package models

// Staged partitioners: the internal/pipeline engine trains a model split
// into S contiguous stages, each owning a disjoint slice of the layers.
// The types below satisfy pipeline.Stage structurally (no import needed,
// like the dist.Trainable adapters in microbatch.go): Forward runs one
// stage's segment over one microbatch, wiring upstream boundary
// activations (differentiable leaves supplied by the engine) through the
// stage's layers and returning the boundary payload for the next stage.
// The final stage returns the microbatch mean loss as its single output.
//
// Cuts are placed at block boundaries by a cost-balanced contiguous
// partition (balancedSplit), so no layer — and no parameter — spans two
// stages. Each stage gets its own optimizer built with the workload's
// hyperparameters; the optimizers are elementwise, so S per-stage
// instances update exactly like one serial instance over all parameters.

import (
	"fmt"

	"repro/internal/autograd"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// balancedSplit partitions n contiguous unit costs into s groups minimizing
// the maximum group cost (the pipeline's bottleneck stage). It returns s+1
// cut indices with cuts[0] = 0 and cuts[s] = n.
func balancedSplit(costs []float64, s int) ([]int, error) {
	n := len(costs)
	if s < 1 {
		return nil, fmt.Errorf("models: %d pipeline stages < 1", s)
	}
	if s > n {
		return nil, fmt.Errorf("models: %d pipeline stages exceed the model's %d splittable blocks", s, n)
	}
	prefix := make([]float64, n+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	sum := func(lo, hi int) float64 { return prefix[hi] - prefix[lo] }

	// f[j][i]: minimal bottleneck cost partitioning units [0, i) into j
	// groups; choice[j][i] records the last cut for reconstruction.
	const inf = 1e300
	f := make([][]float64, s+1)
	choice := make([][]int, s+1)
	for j := range f {
		f[j] = make([]float64, n+1)
		choice[j] = make([]int, n+1)
		for i := range f[j] {
			f[j][i] = inf
		}
	}
	f[0][0] = 0
	for j := 1; j <= s; j++ {
		for i := j; i <= n; i++ {
			for k := j - 1; k < i; k++ {
				if f[j-1][k] >= inf {
					continue
				}
				c := f[j-1][k]
				if g := sum(k, i); g > c {
					c = g
				}
				if c < f[j][i] {
					f[j][i] = c
					choice[j][i] = k
				}
			}
		}
	}
	cuts := make([]int, s+1)
	cuts[s] = n
	for j := s; j > 0; j-- {
		cuts[j-1] = choice[j][cuts[j]]
	}
	return cuts, nil
}

// ---------------------------------------------------------------------------
// ResNet stages
// ---------------------------------------------------------------------------

type imageUnitKind uint8

const (
	imgStem imageUnitKind = iota // stem conv + BN + ReLU
	imgBlock
	imgHead // global average pool + classifier (+ loss)
)

type imageUnit struct {
	kind imageUnitKind
	blk  *residualBlock
}

// imageUnits enumerates the classifier's splittable blocks in forward
// order, with per-unit compute-cost estimates (conv MACs at the dataset's
// spatial size) for the balanced cut.
func imageUnits(net *ResNet, size int) ([]imageUnit, []float64) {
	convCost := func(c *nn.Conv2d, hin int) (float64, int) {
		f, ci, k := c.W.Value.Shape[0], c.W.Value.Shape[1], c.W.Value.Shape[2]
		ho := tensor.ConvOut(hin, k, c.Stride, c.Pad)
		return float64(ho * ho * ci * k * k * f), ho
	}
	var units []imageUnit
	var costs []float64

	cost, h := convCost(net.stem, size)
	units = append(units, imageUnit{kind: imgStem})
	costs = append(costs, cost)
	for _, blk := range net.blocks {
		c1, h1 := convCost(blk.conv1, h)
		c2, h2 := convCost(blk.conv2, h1)
		c := c1 + c2
		if blk.down != nil {
			cd, _ := convCost(blk.down, h)
			c += cd
		}
		h = h2
		units = append(units, imageUnit{kind: imgBlock, blk: blk})
		costs = append(costs, c)
	}
	fc := net.fc.W.Value
	units = append(units, imageUnit{kind: imgHead})
	costs = append(costs, float64(fc.Shape[0]*fc.Shape[1]))
	return units, costs
}

// ImageStage is one contiguous ResNet segment plus its optimizer. It
// satisfies pipeline.Stage structurally. The first stage assembles (and
// augments) the input microbatch; the last stage computes the
// cross-entropy loss. Per-slot buffers keep every in-flight microbatch's
// inputs alive until its backward pass, so warm steps allocate nothing.
type ImageStage struct {
	w     *ImageClassification
	units []imageUnit
	first bool
	last  bool

	// Opt updates this stage's parameter shard (same hyperparameters as
	// the serial workload optimizer).
	Opt opt.Optimizer

	ctx     nn.Ctx
	aug     *datasets.Augment
	bx      []*tensor.Tensor // per-slot input batches (first stage)
	blabels [][]int          // per-slot labels (first/last stage)
	out     [][]*autograd.Var
}

// PipelineStages partitions the workload's network into the given number
// of contiguous stages with a cost-balanced split at block boundaries.
// The stages are views over the workload's single model replica (disjoint
// parameter shards), so Evaluate on the workload sees pipeline-trained
// weights directly.
func (w *ImageClassification) PipelineStages(stages int) ([]*ImageStage, error) {
	units, costs := imageUnits(w.Net, w.DS.Cfg.Size)
	cuts, err := balancedSplit(costs, stages)
	if err != nil {
		return nil, err
	}
	out := make([]*ImageStage, stages)
	for si := 0; si < stages; si++ {
		st := &ImageStage{
			w:     w,
			units: units[cuts[si]:cuts[si+1]],
			first: si == 0,
			last:  si == stages-1,
		}
		if w.HP.Augment {
			st.aug = &datasets.Augment{Flip: true, CropPad: 1, Jitter: 0.1}
		}
		st.Opt = imageOptimizer(w.HP, st.Params())
		out[si] = st
	}
	return out, nil
}

// Optimizer returns the stage's optimizer (pipeline.StageWithOpt
// contract).
func (st *ImageStage) Optimizer() opt.Optimizer { return st.Opt }

// Params returns the stage's parameter shard in unit order
// (pipeline.Stage contract).
func (st *ImageStage) Params() []*autograd.Param {
	var ps []*autograd.Param
	for _, u := range st.units {
		switch u.kind {
		case imgStem:
			ps = append(ps, nn.CollectParams(st.w.Net.stem, st.w.Net.stemBN)...)
		case imgBlock:
			ps = append(ps, u.blk.Params()...)
		case imgHead:
			ps = append(ps, st.w.Net.fc.Params()...)
		}
	}
	return ps
}

func (st *ImageStage) ensure(slot int) {
	for len(st.out) <= slot {
		st.out = append(st.out, nil)
		st.bx = append(st.bx, nil)
		st.blabels = append(st.blabels, nil)
	}
}

// Forward runs the stage over one microbatch (pipeline.Stage contract).
// Stochasticity (augmentation) draws from rng exactly as the dist
// MicrobatchLoss adapter does, so a staged run consumes the identical
// randomness stream as the serial baseline. BatchNorm statistics are per
// microbatch (ghost batch norm), matching the serial microbatch oracle.
func (st *ImageStage) Forward(tape *autograd.Tape, slot int, idx []int, rng *tensor.RNG, in []*autograd.Var) []*autograd.Var {
	st.ensure(slot)
	st.ctx = nn.Ctx{Tape: tape, Train: true, RNG: rng}
	var h *autograd.Var
	if st.first {
		var aug *datasets.Augment
		if st.aug != nil {
			st.aug.RNG = rng
			aug = st.aug
		}
		st.bx[slot], st.blabels[slot] = st.w.DS.BatchInto(st.bx[slot], st.blabels[slot], true, idx, aug)
		h = tape.ConstOf(st.bx[slot])
	} else {
		h = in[0]
	}
	for _, u := range st.units {
		switch u.kind {
		case imgStem:
			h = autograd.ReLU(st.w.Net.stemBN.Forward(&st.ctx, st.w.Net.stem.Forward(&st.ctx, h)))
		case imgBlock:
			h = u.blk.forward(&st.ctx, h)
		case imgHead:
			if !st.first {
				st.blabels[slot] = labelsInto(st.blabels[slot], st.w.DS.TrainLabels, idx)
			}
			logits := st.w.Net.fc.Forward(&st.ctx, autograd.GlobalAvgPool2D(h))
			h = autograd.SoftmaxCrossEntropy(logits, st.blabels[slot])
		}
	}
	o := append(st.out[slot][:0], h)
	st.out[slot] = o
	return o
}

// labelsInto gathers labels for idx into a reused buffer.
func labelsInto(buf []int, labels []int, idx []int) []int {
	if cap(buf) < len(idx) {
		buf = make([]int, len(idx))
	}
	buf = buf[:len(idx)]
	for i, id := range idx {
		buf[i] = labels[id]
	}
	return buf
}

// ---------------------------------------------------------------------------
// Transformer stages
// ---------------------------------------------------------------------------

type mtUnitKind uint8

const (
	mtEmbed mtUnitKind = iota // tied source+target embedding with positions
	mtEnc
	mtDec
	mtHead // output projection + loss
)

type mtUnit struct {
	kind mtUnitKind
	blk  *transformerBlock
}

// mtUnits enumerates the Transformer's splittable blocks in forward order
// with relative cost estimates (projection + attention FLOPs per token).
func mtUnits(w *Translation) ([]mtUnit, []float64) {
	d, ff, vocab := w.Net.D, w.HP.FF, w.DS.Cfg.Vocab
	ts, tt := float64(w.srcLen), float64(w.tgtLen)
	df := float64(d)
	attn := func(tq, tk float64) float64 { return 4*tq*df*df + 2*tq*tk*df }
	ffwd := func(t float64) float64 { return 2 * t * df * float64(ff) }

	units := []mtUnit{{kind: mtEmbed}}
	costs := []float64{(ts + tt) * df}
	for _, blk := range w.Net.enc {
		units = append(units, mtUnit{kind: mtEnc, blk: blk})
		costs = append(costs, attn(ts, ts)+ffwd(ts))
	}
	for _, blk := range w.Net.dec {
		units = append(units, mtUnit{kind: mtDec, blk: blk})
		costs = append(costs, attn(tt, tt)+attn(tt, ts)+ffwd(tt))
	}
	units = append(units, mtUnit{kind: mtHead})
	costs = append(costs, tt*df*float64(vocab))
	return units, costs
}

// TranslationStage is one contiguous Transformer segment plus its
// optimizer (structural pipeline.Stage). The boundary payload is always
// the pair (a, b): in the encoder region a is the evolving encoder hidden
// state and b the (precomputed, pass-through) decoder input embedding;
// once the last encoder block has run, a becomes the attention memory that
// every decoder block reads while b evolves through the decoder. Passing
// both through every stage keeps the channel topology strictly
// neighbor-to-neighbor; pass-through tensors cross a stage as identity,
// which is bit-transparent in both directions.
type TranslationStage struct {
	w     *Translation
	units []mtUnit
	first bool
	last  bool

	Opt opt.Optimizer

	ctx nn.Ctx
	src [][]int // per-slot packed source ids (first stage)
	dec [][]int // per-slot packed decoder-input ids (first stage)
	lab [][]int // per-slot packed label ids (first/last stage)
	out [][]*autograd.Var
}

// PipelineStages partitions the workload's Transformer into the given
// number of contiguous stages with a cost-balanced split at block
// boundaries (tied embeddings on the first stage, projection head on the
// last). The stages are views over the workload's single model replica.
func (w *Translation) PipelineStages(stages int) ([]*TranslationStage, error) {
	units, costs := mtUnits(w)
	cuts, err := balancedSplit(costs, stages)
	if err != nil {
		return nil, err
	}
	out := make([]*TranslationStage, stages)
	for si := 0; si < stages; si++ {
		st := &TranslationStage{
			w:     w,
			units: units[cuts[si]:cuts[si+1]],
			first: si == 0,
			last:  si == stages-1,
		}
		st.Opt = mtOptimizer(w.HP, st.Params())
		out[si] = st
	}
	return out, nil
}

// Optimizer returns the stage's optimizer (pipeline.StageWithOpt
// contract).
func (st *TranslationStage) Optimizer() opt.Optimizer { return st.Opt }

// Params returns the stage's parameter shard in unit order
// (pipeline.Stage contract).
func (st *TranslationStage) Params() []*autograd.Param {
	var ps []*autograd.Param
	for _, u := range st.units {
		switch u.kind {
		case mtEmbed:
			ps = append(ps, st.w.Net.Embed.Params()...)
		case mtEnc, mtDec:
			ps = append(ps, u.blk.Params()...)
		case mtHead:
			ps = append(ps, st.w.Net.Proj.Params()...)
		}
	}
	return ps
}

func (st *TranslationStage) ensure(slot int) {
	for len(st.out) <= slot {
		st.out = append(st.out, nil)
		st.src = append(st.src, nil)
		st.dec = append(st.dec, nil)
		st.lab = append(st.lab, nil)
	}
}

// Forward runs the stage over one microbatch (pipeline.Stage contract).
func (st *TranslationStage) Forward(tape *autograd.Tape, slot int, idx []int, rng *tensor.RNG, in []*autograd.Var) []*autograd.Var {
	st.ensure(slot)
	st.ctx = nn.Ctx{Tape: tape, Train: true, RNG: rng}
	w := st.w
	b := len(idx)
	var a, hd *autograd.Var
	if !st.first {
		a, hd = in[0], in[1]
	}
	for _, u := range st.units {
		switch u.kind {
		case mtEmbed:
			st.src[slot], st.dec[slot], st.lab[slot] =
				mtFlattenInto(w.DS, idx, w.srcLen, w.tgtLen, st.src[slot], st.dec[slot], st.lab[slot])
			a = nn.AddPositional(w.Net.Embed.Forward(&st.ctx, st.src[slot]), b, w.srcLen, w.Net.D)
			hd = nn.AddPositional(w.Net.Embed.Forward(&st.ctx, st.dec[slot]), b, w.tgtLen, w.Net.D)
		case mtEnc:
			a = u.blk.forward(&st.ctx, a, nil, b, w.srcLen, 0, false)
		case mtDec:
			hd = u.blk.forward(&st.ctx, hd, a, b, w.tgtLen, w.srcLen, true)
		case mtHead:
			if !st.first {
				_, _, st.lab[slot] = mtFlattenInto(w.DS, idx, 0, w.tgtLen, nil, nil, st.lab[slot])
			}
			logits := w.Net.Proj.Forward(&st.ctx, hd)
			loss := autograd.SoftmaxCrossEntropy(logits, st.lab[slot])
			o := append(st.out[slot][:0], loss)
			st.out[slot] = o
			return o
		}
	}
	o := append(st.out[slot][:0], a, hd)
	st.out[slot] = o
	return o
}

// mtFlattenInto packs examples idx into flat source / decoder-input /
// label id rows (PadBatch semantics: PAD-padded source, BOS-led decoder
// input, -1-ignored label padding), reusing the provided buffers. srcLen 0
// skips the source and decoder rows (label-only callers).
func mtFlattenInto(ds *datasets.MTDataset, idx []int, srcLen, tgtLen int, src, dec, lab []int) ([]int, []int, []int) {
	src, dec, lab = src[:0], dec[:0], lab[:0]
	for _, id := range idx {
		p := ds.Train[id]
		if srcLen > 0 {
			for j := 0; j < srcLen; j++ {
				if j < len(p.Src) {
					src = append(src, p.Src[j])
				} else {
					src = append(src, datasets.PAD)
				}
			}
			dec = append(dec, datasets.BOS)
			for j := 0; j < tgtLen-1; j++ {
				if j < len(p.Tgt) {
					dec = append(dec, p.Tgt[j])
				} else {
					dec = append(dec, datasets.PAD)
				}
			}
		}
		for j := 0; j < tgtLen; j++ {
			if j < len(p.Tgt) {
				lab = append(lab, p.Tgt[j])
			} else {
				lab = append(lab, -1)
			}
		}
	}
	return src, dec, lab
}

// Params exposes the translation workload's trainable parameters
// (dist.Trainable / pipeline baseline contract).
func (w *Translation) Params() []*autograd.Param { return w.params }

// MicrobatchLoss builds the Transformer training loss for one microbatch
// of sentence-pair indices — the serial oracle the staged pipeline is
// bit-identical to, and the adapter that makes the Transformer benchmark
// trainable on the internal/dist data-parallel engine. The op sequence is
// exactly the staged units' composition at S = 1: tied source and target
// embeddings first, then encoder blocks, decoder blocks, and the
// projection head. (Note this path, like dist's, applies no global
// gradient clipping — the engines own the update.)
func (w *Translation) MicrobatchLoss(tape *autograd.Tape, idx []int, rng *tensor.RNG) *autograd.Var {
	w.mbSrc, w.mbDec, w.mbLab = mtFlattenInto(w.DS, idx, w.srcLen, w.tgtLen, w.mbSrc, w.mbDec, w.mbLab)
	ctx := nn.Ctx{Tape: tape, Train: true, RNG: rng}
	b := len(idx)
	hEnc := nn.AddPositional(w.Net.Embed.Forward(&ctx, w.mbSrc), b, w.srcLen, w.Net.D)
	hDec := nn.AddPositional(w.Net.Embed.Forward(&ctx, w.mbDec), b, w.tgtLen, w.Net.D)
	for _, blk := range w.Net.enc {
		hEnc = blk.forward(&ctx, hEnc, nil, b, w.srcLen, 0, false)
	}
	for _, blk := range w.Net.dec {
		hDec = blk.forward(&ctx, hDec, hEnc, b, w.tgtLen, w.srcLen, true)
	}
	return autograd.SoftmaxCrossEntropy(w.Net.Proj.Forward(&ctx, hDec), w.mbLab)
}
