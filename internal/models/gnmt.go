package models

import (
	"repro/internal/autograd"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// GNMT is the recurrent translation benchmark (§3.1.3): an LSTM
// encoder-decoder with Luong-style multiplicative attention and residual
// connections between stacked layers, the structural skeleton of Wu et al.
// (2016) at reduced width/depth.
type GNMT struct {
	Embed   *nn.Embedding
	Encoder *nn.StackedLSTM
	Decoder *nn.StackedLSTM
	// AttnCombine mixes [decoder state ; attention context] into the
	// attentional hidden state (Luong's Wc).
	AttnCombine *nn.Linear
	Proj        *nn.Linear
	Hidden      int
}

// NewGNMT builds the model.
func NewGNMT(vocab, embed, hidden, layers int, rng *tensor.RNG) *GNMT {
	return &GNMT{
		Embed:       nn.NewEmbedding("embed", vocab, embed, rng),
		Encoder:     nn.NewStackedLSTM("enc", embed, hidden, layers, true, rng),
		Decoder:     nn.NewStackedLSTM("dec", embed, hidden, layers, true, rng),
		AttnCombine: nn.NewLinearXavier("attn_c", 2*hidden, hidden, true, rng),
		Proj:        nn.NewLinearXavier("proj", hidden, vocab, true, rng),
		Hidden:      hidden,
	}
}

// Params implements nn.Module.
func (m *GNMT) Params() []*autograd.Param {
	return nn.CollectParams(m.Embed, m.Encoder, m.Decoder, m.AttnCombine, m.Proj)
}

// Encode runs the encoder over packed source ids (b rows × t cols),
// returning the top-layer output at each timestep.
func (m *GNMT) Encode(ctx *nn.Ctx, src [][]int) []*autograd.Var {
	b, t := len(src), len(src[0])
	states := m.Encoder.ZeroState(b)
	outs := make([]*autograd.Var, t)
	for step := 0; step < t; step++ {
		ids := make([]int, b)
		for i := 0; i < b; i++ {
			ids[i] = src[i][step]
		}
		x := m.Embed.Forward(ctx, ids)
		outs[step], states = m.Encoder.Step(ctx, x, states)
	}
	return outs
}

// attend computes Luong dot attention: weights over encoder outputs from
// the decoder state, then the weighted context vector.
func (m *GNMT) attend(ctx *nn.Ctx, h *autograd.Var, encOuts []*autograd.Var) *autograd.Var {
	scores := make([]*autograd.Var, len(encOuts))
	for t, enc := range encOuts {
		scores[t] = autograd.RowSum(autograd.Mul(h, enc)) // [B,1]
	}
	attn := autograd.SoftmaxRows(autograd.ConcatCols(scores...)) // [B,T]
	var context *autograd.Var
	for t, enc := range encOuts {
		term := autograd.MulColVec(autograd.SliceCols(attn, t, t+1), enc)
		if context == nil {
			context = term
		} else {
			context = autograd.Add(context, term)
		}
	}
	return context
}

// DecodeStep advances the decoder one step: embed the input token, run the
// stacked LSTM, attend over the encoder outputs, and combine.
func (m *GNMT) DecodeStep(ctx *nn.Ctx, ids []int, states []nn.State, encOuts []*autograd.Var) (*autograd.Var, []nn.State) {
	x := m.Embed.Forward(ctx, ids)
	h, next := m.Decoder.Step(ctx, x, states)
	contextVec := m.attend(ctx, h, encOuts)
	combined := autograd.Tanh(m.AttnCombine.Forward(ctx, autograd.ConcatCols(h, contextVec)))
	return m.Proj.Forward(ctx, combined), next
}

// DefaultGNMTHParams is the reference configuration.
func DefaultGNMTHParams() MTHParams {
	return MTHParams{Batch: 16, LR: 0.01, D: 20, Heads: 1, FF: 0, Layers: 2, Warmup: 0, ClipNorm: 5}
}

// RNNTranslation is the GNMT workload.
type RNNTranslation struct {
	HP  MTHParams
	DS  *datasets.MTDataset
	Net *GNMT
	Opt opt.Optimizer

	srcLen, tgtLen int
	params         []*autograd.Param
	loader         *data.Loader
	rng            *tensor.RNG
	epoch, steps   int
}

// NewRNNTranslation builds the GNMT workload. HP.D is the embedding width;
// hidden width is 2·D.
func NewRNNTranslation(ds *datasets.MTDataset, hp MTHParams, seed uint64) *RNNTranslation {
	rng := tensor.NewRNG(seed)
	net := NewGNMT(ds.Cfg.Vocab, hp.D, 2*hp.D, hp.Layers, rng.Split(1))
	params := net.Params()
	return &RNNTranslation{
		HP: hp, DS: ds, Net: net,
		Opt:    opt.NewAdam(params, hp.LR, 0.9, 0.999, 1e-8, 0),
		srcLen: ds.Cfg.MaxLen,
		tgtLen: ds.Cfg.MaxLen + 1,
		params: params,
		loader: data.NewLoader(len(ds.Train), hp.Batch, rng.Split(2)),
		rng:    rng.Split(3),
	}
}

// Name implements Workload.
func (w *RNNTranslation) Name() string { return "translation_gnmt" }

// Epoch implements Workload.
func (w *RNNTranslation) Epoch() int { return w.epoch }

// Steps implements StepCounter.
func (w *RNNTranslation) Steps() int { return w.steps }

// TrainEpoch implements Workload (teacher forcing).
func (w *RNNTranslation) TrainEpoch() float64 {
	totalLoss, n := 0.0, 0
	for i := 0; i < w.loader.StepsPerEpoch(); i++ {
		idx, _ := w.loader.Next()
		pairs := make([]datasets.MTPair, len(idx))
		for j, id := range idx {
			pairs[j] = w.DS.Train[id]
		}
		src, decIn, labels := datasets.PadBatch(pairs, w.srcLen, w.tgtLen)
		loss := trainStep(nil, w.params, w.Opt, func(tape *autograd.Tape) *autograd.Var {
			ctx := nn.NewCtx(tape, true, w.rng)
			encOuts := w.Net.Encode(ctx, src)
			states := w.Net.Decoder.ZeroState(len(src))
			var total *autograd.Var
			for t := 0; t < w.tgtLen; t++ {
				ids := make([]int, len(decIn))
				lb := make([]int, len(decIn))
				for b := range decIn {
					ids[b] = decIn[b][t]
					lb[b] = labels[b][t]
				}
				var logits *autograd.Var
				logits, states = w.Net.DecodeStep(ctx, ids, states, encOuts)
				stepLoss := autograd.SoftmaxCrossEntropy(logits, lb)
				if total == nil {
					total = stepLoss
				} else {
					total = autograd.Add(total, stepLoss)
				}
			}
			return autograd.Scale(total, 1/float64(w.tgtLen))
		}, func() {
			if w.HP.ClipNorm > 0 {
				nn.ClipGradNorm(w.params, w.HP.ClipNorm)
			}
		})
		totalLoss += loss
		n++
		w.steps++
	}
	w.epoch++
	return totalLoss / float64(n)
}

// GreedyDecode translates one source sentence by greedy decoding.
func (w *RNNTranslation) GreedyDecode(src []int) []int {
	padded := make([]int, w.srcLen)
	copy(padded, src)
	tape := autograd.NewTape()
	ctx := nn.NewCtx(tape, false, w.rng)
	encOuts := w.Net.Encode(ctx, [][]int{padded})
	states := w.Net.Decoder.ZeroState(1)
	cur := datasets.BOS
	var out []int
	for t := 0; t < w.tgtLen; t++ {
		var logits *autograd.Var
		logits, states = w.Net.DecodeStep(ctx, []int{cur}, states, encOuts)
		next := argmaxRow(logits.Value, 0)
		if next == datasets.EOS {
			break
		}
		out = append(out, next)
		cur = next
	}
	return out
}

// Evaluate implements Workload: corpus BLEU with greedy decoding.
func (w *RNNTranslation) Evaluate() float64 {
	var cands, refs [][]int
	for _, p := range w.DS.Val {
		cands = append(cands, w.GreedyDecode(p.Src))
		ref := append([]int(nil), p.Tgt...)
		if len(ref) > 0 && ref[len(ref)-1] == datasets.EOS {
			ref = ref[:len(ref)-1]
		}
		refs = append(refs, ref)
	}
	return metrics.BLEU(cands, refs)
}
