package models

import (
	"repro/internal/autograd"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// transformerBlock is one encoder or decoder block: self-attention,
// optional cross-attention (decoder only), and a position-wise feed-forward
// network, each wrapped in residual + LayerNorm (post-norm, as in Vaswani
// et al.).
type transformerBlock struct {
	selfAttn      *nn.MultiHeadAttention
	crossAttn     *nn.MultiHeadAttention // nil in encoder blocks
	ff1, ff2      *nn.Linear
	ln1, ln2, ln3 *nn.LayerNorm
}

func newTransformerBlock(name string, d, heads, ff int, decoder bool, rng *tensor.RNG) *transformerBlock {
	b := &transformerBlock{
		selfAttn: nn.NewMultiHeadAttention(name+".self", d, heads, rng),
		ff1:      nn.NewLinear(name+".ff1", d, ff, true, rng),
		ff2:      nn.NewLinearXavier(name+".ff2", ff, d, true, rng),
		ln1:      nn.NewLayerNorm(name+".ln1", d),
		ln2:      nn.NewLayerNorm(name+".ln2", d),
	}
	if decoder {
		b.crossAttn = nn.NewMultiHeadAttention(name+".cross", d, heads, rng)
		b.ln3 = nn.NewLayerNorm(name+".ln3", d)
	}
	return b
}

// forward runs the block over x [b*t, d]; memory is the encoder output for
// decoder blocks (nil in the encoder).
func (blk *transformerBlock) forward(ctx *nn.Ctx, x, memory *autograd.Var, b, t, tMem int, causal bool) *autograd.Var {
	h := blk.ln1.Forward(ctx, autograd.Add(x, blk.selfAttn.Forward(ctx, x, x, b, t, t, causal)))
	if blk.crossAttn != nil {
		h = blk.ln3.Forward(ctx, autograd.Add(h, blk.crossAttn.Forward(ctx, h, memory, b, t, tMem, false)))
	}
	ff := blk.ff2.Forward(ctx, autograd.ReLU(blk.ff1.Forward(ctx, h)))
	return blk.ln2.Forward(ctx, autograd.Add(h, ff))
}

func (blk *transformerBlock) Params() []*autograd.Param {
	ps := nn.CollectParams(blk.selfAttn, blk.ff1, blk.ff2, blk.ln1, blk.ln2)
	if blk.crossAttn != nil {
		ps = append(ps, nn.CollectParams(blk.crossAttn, blk.ln3)...)
	}
	return ps
}

// Transformer is the non-recurrent translation benchmark (§3.1.3): an
// encoder-decoder stack of attention blocks with sinusoidal positional
// encodings and a tied output projection to vocabulary logits.
type Transformer struct {
	Embed *nn.Embedding
	enc   []*transformerBlock
	dec   []*transformerBlock
	Proj  *nn.Linear
	D     int
	Heads int
}

// NewTransformer builds the model.
func NewTransformer(vocab, d, heads, ff, layers int, rng *tensor.RNG) *Transformer {
	t := &Transformer{
		Embed: nn.NewEmbedding("embed", vocab, d, rng),
		Proj:  nn.NewLinearXavier("proj", d, vocab, true, rng),
		D:     d,
		Heads: heads,
	}
	// Scale embedding init up for attention stability.
	t.Embed.Table.Value.ScaleInPlace(100)
	for i := 0; i < layers; i++ {
		t.enc = append(t.enc, newTransformerBlock("enc"+nameIdx(i), d, heads, ff, false, rng))
		t.dec = append(t.dec, newTransformerBlock("dec"+nameIdx(i), d, heads, ff, true, rng))
	}
	return t
}

func nameIdx(i int) string { return "." + string(rune('0'+i%10)) }

// Encode embeds and encodes packed source ids (b rows of length t).
func (m *Transformer) Encode(ctx *nn.Ctx, src [][]int) *autograd.Var {
	b, t := len(src), len(src[0])
	flat := make([]int, 0, b*t)
	for _, row := range src {
		flat = append(flat, row...)
	}
	h := nn.AddPositional(m.Embed.Forward(ctx, flat), b, t, m.D)
	for _, blk := range m.enc {
		h = blk.forward(ctx, h, nil, b, t, 0, false)
	}
	return h
}

// Decode runs the decoder over packed target-input ids given encoder
// memory, returning vocabulary logits [b*t, vocab].
func (m *Transformer) Decode(ctx *nn.Ctx, decIn [][]int, memory *autograd.Var, tMem int) *autograd.Var {
	b, t := len(decIn), len(decIn[0])
	flat := make([]int, 0, b*t)
	for _, row := range decIn {
		flat = append(flat, row...)
	}
	h := nn.AddPositional(m.Embed.Forward(ctx, flat), b, t, m.D)
	for _, blk := range m.dec {
		h = blk.forward(ctx, h, memory, b, t, tMem, true)
	}
	return m.Proj.Forward(ctx, h)
}

// Params implements nn.Module.
func (m *Transformer) Params() []*autograd.Param {
	ps := nn.CollectParams(m.Embed, m.Proj)
	for _, blk := range m.enc {
		ps = append(ps, blk.Params()...)
	}
	for _, blk := range m.dec {
		ps = append(ps, blk.Params()...)
	}
	return ps
}

// MTHParams are the tunables shared by both translation benchmarks.
type MTHParams struct {
	Batch  int
	LR     float64
	D      int
	Heads  int
	FF     int
	Layers int
	Warmup int
	// ClipNorm caps the global gradient norm (0 disables).
	ClipNorm float64
}

// DefaultTransformerHParams is the reference configuration.
func DefaultTransformerHParams() MTHParams {
	return MTHParams{Batch: 16, LR: 0.05, D: 24, Heads: 2, FF: 48, Layers: 2, Warmup: 100, ClipNorm: 5}
}

// Translation is the Transformer workload over the synthetic parallel
// corpus.
type Translation struct {
	HP    MTHParams
	DS    *datasets.MTDataset
	Net   *Transformer
	Opt   opt.Optimizer
	Sched opt.Schedule

	srcLen, tgtLen int
	params         []*autograd.Param
	loader         *data.Loader
	rng            *tensor.RNG
	epoch, steps   int

	// Reused microbatch id buffers (MicrobatchLoss).
	mbSrc, mbDec, mbLab []int
}

// mtOptimizer builds the translation benchmark optimizer for a parameter
// list (factored out for per-stage pipeline optimizers; see imageOptimizer).
func mtOptimizer(hp MTHParams, params []*autograd.Param) opt.Optimizer {
	return opt.NewAdam(params, hp.LR, 0.9, 0.98, 1e-9, 0)
}

// NewTranslation builds the Transformer workload.
func NewTranslation(ds *datasets.MTDataset, hp MTHParams, seed uint64) *Translation {
	rng := tensor.NewRNG(seed)
	net := NewTransformer(ds.Cfg.Vocab, hp.D, hp.Heads, hp.FF, hp.Layers, rng.Split(1))
	params := net.Params()
	w := &Translation{
		HP: hp, DS: ds, Net: net,
		Opt:    mtOptimizer(hp, params),
		Sched:  opt.InverseSqrt{Base: hp.LR, WarmupSteps: hp.Warmup},
		srcLen: ds.Cfg.MaxLen,
		tgtLen: ds.Cfg.MaxLen + 1, // room for EOS
		params: params,
		loader: data.NewLoader(len(ds.Train), hp.Batch, rng.Split(2)),
		rng:    rng.Split(3),
	}
	return w
}

// Name implements Workload.
func (w *Translation) Name() string { return "translation_transformer" }

// Epoch implements Workload.
func (w *Translation) Epoch() int { return w.epoch }

// Steps implements StepCounter.
func (w *Translation) Steps() int { return w.steps }

// TrainEpoch implements Workload (teacher-forced cross-entropy).
func (w *Translation) TrainEpoch() float64 {
	totalLoss, n := 0.0, 0
	for i := 0; i < w.loader.StepsPerEpoch(); i++ {
		idx, _ := w.loader.Next()
		pairs := make([]datasets.MTPair, len(idx))
		for j, id := range idx {
			pairs[j] = w.DS.Train[id]
		}
		src, decIn, labels := datasets.PadBatch(pairs, w.srcLen, w.tgtLen)
		flatLabels := make([]int, 0, len(labels)*w.tgtLen)
		for _, row := range labels {
			flatLabels = append(flatLabels, row...)
		}
		applySchedule(w.Opt, w.Sched, w.steps)
		loss := trainStep(nil, w.params, w.Opt, func(tape *autograd.Tape) *autograd.Var {
			ctx := nn.NewCtx(tape, true, w.rng)
			memory := w.Net.Encode(ctx, src)
			logits := w.Net.Decode(ctx, decIn, memory, w.srcLen)
			return autograd.SoftmaxCrossEntropy(logits, flatLabels)
		}, func() {
			if w.HP.ClipNorm > 0 {
				nn.ClipGradNorm(w.params, w.HP.ClipNorm)
			}
		})
		totalLoss += loss
		n++
		w.steps++
	}
	w.epoch++
	return totalLoss / float64(n)
}

// GreedyDecode translates one source sentence by greedy argmax decoding.
func (w *Translation) GreedyDecode(src []int) []int {
	padded := make([]int, w.srcLen)
	copy(padded, src)
	tape := autograd.NewTape()
	ctx := nn.NewCtx(tape, false, w.rng)
	memory := w.Net.Encode(ctx, [][]int{padded})
	decIn := make([]int, w.tgtLen)
	decIn[0] = datasets.BOS
	var out []int
	for t := 0; t < w.tgtLen; t++ {
		logits := w.Net.Decode(ctx, [][]int{decIn}, memory, w.srcLen)
		next := argmaxRow(logits.Value, t)
		if next == datasets.EOS {
			break
		}
		out = append(out, next)
		if t+1 < w.tgtLen {
			decIn[t+1] = next
		}
	}
	return out
}

func argmaxRow(t *tensor.Tensor, row int) int {
	m := t.Shape[1]
	best, bi := t.Data[row*m], 0
	for j := 1; j < m; j++ {
		if v := t.Data[row*m+j]; v > best {
			best, bi = v, j
		}
	}
	return bi
}

// Evaluate implements Workload: corpus BLEU on the validation split with
// greedy decoding.
func (w *Translation) Evaluate() float64 {
	var cands, refs [][]int
	for _, p := range w.DS.Val {
		cands = append(cands, w.GreedyDecode(p.Src))
		ref := append([]int(nil), p.Tgt...)
		// Strip EOS from the reference for BLEU.
		if len(ref) > 0 && ref[len(ref)-1] == datasets.EOS {
			ref = ref[:len(ref)-1]
		}
		refs = append(refs, ref)
	}
	return metrics.BLEU(cands, refs)
}
