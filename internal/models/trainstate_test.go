package models

import (
	"bytes"
	"encoding/binary"
	"math"
	"runtime"
	"testing"

	"repro/internal/datasets"
	"repro/internal/precision"
	"repro/internal/tensor"
)

// paramsDigest folds current parameter values through FNV-1a.
func paramsDigest(w *Recommendation) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range w.params {
		for _, v := range p.Value.Data {
			bits := math.Float64bits(v)
			for sh := 0; sh < 64; sh += 8 {
				h ^= uint64(byte(bits >> sh))
				h *= 1099511628211
			}
		}
	}
	return h
}

// TestRecommendationResumeBitIdentity trains a reference run, captures the
// state mid-run, restores into a freshly built workload, and checks the
// resumed trajectory is bit-identical for the remaining epochs — for both
// the f64 reference regime and the mixed bf16 regime (whose loss-scale
// position rides in the checkpoint).
func TestRecommendationResumeBitIdentity(t *testing.T) {
	regimes := []struct {
		name string
		num  precision.Numerics
	}{
		{"f64", precision.Numerics{}},
		{"bf16_mixed", precision.NumericsFor(tensor.BFloat16)},
	}
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			ds := datasets.GenerateRec(datasets.DefaultRecConfig())
			hp := DefaultNCFHParams()
			hp.Numerics = rg.num

			ref := NewRecommendation(ds, hp, 42)
			ref.TrainEpoch()
			ref.TrainEpoch()
			st := ref.CaptureTrainState()
			if st.Step != ref.Steps() || st.Epoch != 2 {
				t.Fatalf("captured step/epoch = %d/%d, want %d/2", st.Step, st.Epoch, ref.Steps())
			}
			refLoss3 := ref.TrainEpoch()
			refLoss4 := ref.TrainEpoch()

			res := NewRecommendation(ds, hp, 42)
			if err := res.RestoreTrainState(st); err != nil {
				t.Fatalf("RestoreTrainState: %v", err)
			}
			if res.Steps() != st.Step || res.Epoch() != st.Epoch {
				t.Fatalf("restored step/epoch = %d/%d, want %d/%d", res.Steps(), res.Epoch(), st.Step, st.Epoch)
			}
			if l := res.TrainEpoch(); l != refLoss3 {
				t.Fatalf("epoch 3 loss after resume = %v, reference %v", l, refLoss3)
			}
			if l := res.TrainEpoch(); l != refLoss4 {
				t.Fatalf("epoch 4 loss after resume = %v, reference %v", l, refLoss4)
			}
			if paramsDigest(res) != paramsDigest(ref) {
				t.Fatal("resumed parameters diverged from reference")
			}
		})
	}
}

// TestRestoreTrainStateValidation checks structural mismatches fail loudly.
func TestRestoreTrainStateValidation(t *testing.T) {
	ds := datasets.GenerateRec(datasets.DefaultRecConfig())
	w := NewRecommendation(ds, DefaultNCFHParams(), 42)
	w.TrainEpoch()
	st := w.CaptureTrainState()

	if err := w.RestoreTrainState(&TrainState{}); err == nil {
		t.Error("accepted state without parameter snapshot")
	}
	noLoader := *st
	noLoader.Loader = nil
	if err := w.RestoreTrainState(&noLoader); err == nil {
		t.Error("accepted state without loader position")
	}
	noRNG := *st
	noRNG.RNGs = nil
	if err := w.RestoreTrainState(&noRNG); err == nil {
		t.Error("accepted state without the negative-sampling stream")
	}
	mixed := *st
	mixed.MP = &precision.MPState{Scale: 1}
	if err := w.RestoreTrainState(&mixed); err == nil {
		t.Error("accepted mixed-precision state into a full-precision workload")
	}
}

// TestLoadSnapshotCorruptCountBounded is the regression test for the
// unbounded-allocation bug: a corrupt header claiming 2^27 values on a
// near-empty stream must fail at the read without allocating the gigabyte
// the count demands.
func TestLoadSnapshotCorruptCountBounded(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("MLPSNAP1")
	put := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
	put(uint32(3)) // benchmark name
	buf.WriteString("rec")
	put(uint32(1)) // one parameter
	put(uint32(1)) // name
	buf.WriteString("w")
	put(uint32(1))       // one dim
	put(uint32(1 << 27)) // dim value (irrelevant)
	put(uint32(1 << 27)) // value count: claims 1 GiB of float64s...
	for i := 0; i < 10; i++ {
		put(uint64(i)) // ...backed by 80 bytes
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("LoadSnapshot accepted truncated snapshot with corrupt count")
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 32<<20 {
		t.Fatalf("LoadSnapshot allocated %d bytes for a %d-byte input (count field drove allocation)",
			alloc, buf.Len())
	}
}
