package models

// TrainState is the full mid-run training state of one workload or engine
// shard — the in-memory form of a training checkpoint. It extends the
// parameter Snapshot (the training→serving handoff) with everything else
// a bit-identical resume needs: optimizer state (momenta and the
// ApplySchedule position, which is just Step), the mixed-precision
// trainer's loss-scale position, auxiliary RNG stream positions, the
// loader's permutation cursor, and the step/epoch counters.
// internal/ckpt serializes it; workloads and the dist/pipeline engines
// implement CaptureTrainState/RestoreTrainState over it.
//
// The per-(step, microshard) RNG streams of the parallel engines need no
// entry here: they are pure functions of (seed, step, microshard),
// reseeded every step, so the Step counter alone restores them.

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/precision"
	"repro/internal/tensor"
)

// RNGEntry is one labeled auxiliary RNG stream position (e.g. the NCF
// negative-sampling stream).
type RNGEntry struct {
	Label string
	State tensor.RNGState
}

// MetaEntry is one key/value pair of harness state riding along with the
// training state (e.g. the grid worker's trajectory-digest accumulator).
// Entries are kept sorted by key so serialization is deterministic.
type MetaEntry struct {
	Key, Value string
}

// TrainState bundles one checkpointable training position.
type TrainState struct {
	// Step and Epoch are the optimizer-step and epoch counters at capture.
	Step, Epoch int
	// Params is the parameter snapshot (never nil in a valid state).
	Params *Snapshot
	// Opts holds the optimizer states: one entry for single-optimizer
	// workloads and the dist engine (replicas are bit-identical), one per
	// local stage for the pipeline engine.
	Opts []opt.State
	// MP is the mixed-precision trainer position (nil in non-mixed runs).
	MP *precision.MPState
	// Loader is the data-traversal position (nil for engines in shard
	// mode follower roles; present wherever a loader is driven).
	Loader *data.LoaderState
	// RNGs are labeled auxiliary stream positions.
	RNGs []RNGEntry
	// Meta carries harness key/value state, sorted by key.
	Meta []MetaEntry
}

// MetaValue returns the value for key, and whether it is present.
func (st *TrainState) MetaValue(key string) (string, bool) {
	for _, m := range st.Meta {
		if m.Key == key {
			return m.Value, true
		}
	}
	return "", false
}

// SetMeta inserts or replaces a meta entry, keeping Meta sorted by key.
func (st *TrainState) SetMeta(key, value string) {
	for i := range st.Meta {
		if st.Meta[i].Key == key {
			st.Meta[i].Value = value
			return
		}
		if st.Meta[i].Key > key {
			st.Meta = append(st.Meta[:i], append([]MetaEntry{{Key: key, Value: value}}, st.Meta[i:]...)...)
			return
		}
	}
	st.Meta = append(st.Meta, MetaEntry{Key: key, Value: value})
}

// rngNamed returns the labeled stream position, erroring on absence —
// restore paths must not silently skip a stream the capture recorded.
func (st *TrainState) rngNamed(label string) (tensor.RNGState, error) {
	for _, e := range st.RNGs {
		if e.Label == label {
			return e.State, nil
		}
	}
	return tensor.RNGState{}, fmt.Errorf("models: train state has no RNG stream %q", label)
}
