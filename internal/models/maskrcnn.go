package models

import (
	"math"
	"sort"

	"repro/internal/autograd"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// MaskRCNN is the heavy-weight two-stage detector/segmenter of §3.1.2: a
// region proposal network (RPN) over backbone features, RoIAlign pooling of
// proposals, and parallel box-classification and mask heads (He et al.,
// 2017a), scaled to the synthetic COCO stand-in.
type MaskRCNN struct {
	Backbone *detBackbone
	// RPN heads (1×1 convs): objectness logit and box deltas per anchor.
	RPNObj *nn.Conv2d
	RPNReg *nn.Conv2d
	// Second stage over RoIAligned features.
	BoxFC1   *nn.Linear
	BoxCls   *nn.Linear
	BoxReg   *nn.Linear
	MaskFC1  *nn.Linear
	MaskOut  *nn.Linear
	Anchors  []Anchor
	Classes  int
	RoISize  int
	MaskSize int
	GridS    int
}

// NewMaskRCNN builds the two-stage model.
func NewMaskRCNN(imageS, classes, width int, rng *tensor.RNG) *MaskRCNN {
	bb := newDetBackbone(width, rng)
	gridS := imageS / bb.Stride
	shapes := DefaultAnchorShapes([]float64{float64(imageS) * 0.3, float64(imageS) * 0.5})
	roi := 4
	maskS := 8
	feat := bb.OutC * roi * roi
	return &MaskRCNN{
		Backbone: bb,
		RPNObj:   nn.NewConv2d("rpn.obj", bb.OutC, len(shapes), 1, 1, 0, true, rng),
		RPNReg:   nn.NewConv2d("rpn.reg", bb.OutC, len(shapes)*4, 1, 1, 0, true, rng),
		BoxFC1:   nn.NewLinear("box.fc1", feat, 32, true, rng),
		BoxCls:   nn.NewLinearXavier("box.cls", 32, classes+1, true, rng),
		BoxReg:   nn.NewLinearXavier("box.reg", 32, 4, true, rng),
		MaskFC1:  nn.NewLinear("mask.fc1", feat, 48, true, rng),
		MaskOut:  nn.NewLinearXavier("mask.out", 48, maskS*maskS, true, rng),
		Anchors:  GridAnchors(gridS, bb.Stride, shapes),
		Classes:  classes,
		RoISize:  roi,
		MaskSize: maskS,
		GridS:    gridS,
	}
}

// Params implements nn.Module.
func (m *MaskRCNN) Params() []*autograd.Param {
	ps := m.Backbone.Params()
	return append(ps, nn.CollectParams(m.RPNObj, m.RPNReg, m.BoxFC1, m.BoxCls, m.BoxReg, m.MaskFC1, m.MaskOut)...)
}

// rpnForward returns per-anchor objectness logits [B*A, 1] and deltas
// [B*A, 4] plus the backbone feature map.
func (m *MaskRCNN) rpnForward(ctx *nn.Ctx, x *autograd.Var) (obj, reg, feat *autograd.Var) {
	feat = m.Backbone.forward(ctx, x)
	obj = autograd.SpatialRows(m.RPNObj.Forward(ctx, feat), 1)
	reg = autograd.SpatialRows(m.RPNReg.Forward(ctx, feat), 4)
	return obj, reg, feat
}

// headsForward pools the given boxes from the feature map and runs the box
// and mask heads. Boxes are image-space; they are mapped into feature-map
// coordinates by the backbone stride.
func (m *MaskRCNN) headsForward(ctx *nn.Ctx, feat *autograd.Var, batchIdx []int, boxes []datasets.Box) (cls, reg, mask *autograd.Var) {
	rois := make([]autograd.RoIBox, len(boxes))
	stride := float64(m.Backbone.Stride)
	for i, b := range boxes {
		rois[i] = autograd.RoIBox{
			Batch: batchIdx[i],
			X1:    b.X1 / stride, Y1: b.Y1 / stride,
			X2: b.X2 / stride, Y2: b.Y2 / stride,
		}
	}
	pooled := autograd.RoIAlign(feat, rois, m.RoISize)
	flat := autograd.Reshape(pooled, len(boxes), m.Backbone.OutC*m.RoISize*m.RoISize)
	boxH := autograd.ReLU(m.BoxFC1.Forward(ctx, flat))
	cls = m.BoxCls.Forward(ctx, boxH)
	reg = m.BoxReg.Forward(ctx, boxH)
	maskH := autograd.ReLU(m.MaskFC1.Forward(ctx, flat))
	mask = m.MaskOut.Forward(ctx, maskH)
	return cls, reg, mask
}

// InstanceSegmentation is the Mask R-CNN workload. Its gating quality
// metric is min(boxAP/boxTarget, maskAP/maskTarget): the benchmark is done
// only when BOTH Table-1 thresholds (0.377 box, 0.339 mask) are met, so the
// harness threshold is 1.0.
type InstanceSegmentation struct {
	HP  DetHParams
	DS  *datasets.DetDataset
	Net *MaskRCNN
	Opt opt.Optimizer

	BoxTarget, MaskTarget float64

	params       []*autograd.Param
	loader       *data.Loader
	rng          *tensor.RNG
	epoch, steps int
}

// DefaultMaskHParams is the reference configuration for Mask R-CNN.
func DefaultMaskHParams() DetHParams {
	return DetHParams{Batch: 8, LR: 0.02, Momentum: 0.9, WeightDecay: 5e-4,
		Width: 6, NegPosRatio: 3, ScoreThresh: 0.25, NMSIoU: 0.3}
}

// NewInstanceSegmentation builds the workload.
func NewInstanceSegmentation(ds *datasets.DetDataset, hp DetHParams, seed uint64) *InstanceSegmentation {
	rng := tensor.NewRNG(seed)
	net := NewMaskRCNN(ds.Cfg.Size, ds.Cfg.Classes, hp.Width, rng.Split(1))
	params := net.Params()
	return &InstanceSegmentation{
		HP: hp, DS: ds, Net: net,
		Opt:        opt.NewSGD(params, hp.LR, hp.Momentum, hp.WeightDecay, opt.TorchStyle),
		BoxTarget:  0.377,
		MaskTarget: 0.339,
		params:     params,
		loader:     data.NewLoader(len(ds.Train), hp.Batch, rng.Split(2)),
		rng:        rng.Split(3),
	}
}

// Name implements Workload.
func (w *InstanceSegmentation) Name() string { return "instance_segmentation_maskrcnn" }

// Epoch implements Workload.
func (w *InstanceSegmentation) Epoch() int { return w.epoch }

// Steps implements StepCounter.
func (w *InstanceSegmentation) Steps() int { return w.steps }

// maskTarget samples the GT mask into the maskS×maskS grid of a proposal.
func maskTargetGrid(gt *tensor.Tensor, box datasets.Box, maskS int) []float64 {
	s := gt.Shape[0]
	out := make([]float64, maskS*maskS)
	bw := math.Max(box.X2-box.X1, 1e-6)
	bh := math.Max(box.Y2-box.Y1, 1e-6)
	for gy := 0; gy < maskS; gy++ {
		py := int(box.Y1 + (float64(gy)+0.5)*bh/float64(maskS))
		for gx := 0; gx < maskS; gx++ {
			px := int(box.X1 + (float64(gx)+0.5)*bw/float64(maskS))
			if py >= 0 && py < s && px >= 0 && px < s && gt.At(py, px) > 0.5 {
				out[gy*maskS+gx] = 1
			}
		}
	}
	return out
}

// TrainEpoch implements Workload: joint RPN + heads training. Proposals for
// the second stage mix decoded RPN proposals with ground-truth boxes (the
// standard trick that guarantees positive RoIs early in training).
func (w *InstanceSegmentation) TrainEpoch() float64 {
	totalLoss, n := 0.0, 0
	for i := 0; i < w.loader.StepsPerEpoch(); i++ {
		idx, _ := w.loader.Next()
		x := datasets.BatchImages(w.DS.Train, idx)
		loss := trainStep(nil, w.params, w.Opt, func(tape *autograd.Tape) *autograd.Var {
			ctx := nn.NewCtx(tape, true, w.rng)
			obj, reg, feat := w.Net.rpnForward(ctx, autograd.Const(x))
			a := len(w.Net.Anchors)

			// --- RPN losses ---
			objTargets := make([]float64, len(idx)*a)
			objRows := make([]int, 0)
			var rpnRegRows []int
			var rpnRegTargets []float64
			for bi, id := range idx {
				ex := w.DS.Train[id]
				match := MatchAnchors(w.Net.Anchors, ex.Boxes, 0.45, 0.3)
				for ai, mt := range match {
					row := bi*a + ai
					switch {
					case mt >= 0:
						objTargets[row] = 1
						objRows = append(objRows, row)
						t := EncodeBox(w.Net.Anchors[ai], ex.Boxes[mt])
						rpnRegRows = append(rpnRegRows, row)
						rpnRegTargets = append(rpnRegTargets, t[0], t[1], t[2], t[3])
					case mt == -2:
						objRows = append(objRows, row)
					}
				}
			}
			objSel := autograd.GatherRows(obj, objRows)
			selTargets := make([]float64, len(objRows))
			for j, r := range objRows {
				selTargets[j] = objTargets[r]
			}
			rpnLoss := autograd.BCEWithLogits(objSel, selTargets)
			if len(rpnRegRows) > 0 {
				rr := autograd.GatherRows(reg, rpnRegRows)
				rpnLoss = autograd.Add(rpnLoss, autograd.Scale(
					autograd.SmoothL1(rr, tensor.FromSlice(rpnRegTargets, len(rpnRegRows), 4)), 2))
			}

			// --- Second stage over proposals (GT boxes + jittered GT) ---
			var batchIdx []int
			var propBoxes []datasets.Box
			var propLabels []int
			var boxRegTargets []float64
			var boxRegRows []int
			var maskRows []int
			var maskTargets []float64
			for bi, id := range idx {
				ex := w.DS.Train[id]
				for gi, gt := range ex.Boxes {
					// Exact GT proposal (positive) ...
					props := []datasets.Box{gt, jitterBox(gt, w.rng, 2, float64(w.DS.Cfg.Size))}
					for _, p := range props {
						row := len(propBoxes)
						batchIdx = append(batchIdx, bi)
						propBoxes = append(propBoxes, p)
						if datasets.IoU(p, gt) >= 0.5 {
							propLabels = append(propLabels, gt.Class)
							t := EncodeBox(boxAsAnchor(p), gt)
							boxRegRows = append(boxRegRows, row)
							boxRegTargets = append(boxRegTargets, t[0], t[1], t[2], t[3])
							maskRows = append(maskRows, row)
							maskTargets = append(maskTargets, maskTargetGrid(ex.Masks[gi], p, w.Net.MaskSize)...)
						} else {
							propLabels = append(propLabels, 0)
						}
					}
				}
				// One random background proposal per image.
				bg := randomBox(w.rng, float64(w.DS.Cfg.Size))
				isBG := true
				for _, gt := range ex.Boxes {
					if datasets.IoU(bg, gt) >= 0.5 {
						isBG = false
						break
					}
				}
				if isBG {
					batchIdx = append(batchIdx, bi)
					propBoxes = append(propBoxes, bg)
					propLabels = append(propLabels, 0)
				}
			}
			cls, boxReg, mask := w.Net.headsForward(ctx, feat, batchIdx, propBoxes)
			headLoss := autograd.SoftmaxCrossEntropy(cls, propLabels)
			if len(boxRegRows) > 0 {
				br := autograd.GatherRows(boxReg, boxRegRows)
				headLoss = autograd.Add(headLoss, autograd.Scale(
					autograd.SmoothL1(br, tensor.FromSlice(boxRegTargets, len(boxRegRows), 4)), 2))
			}
			if len(maskRows) > 0 {
				mr := autograd.GatherRows(mask, maskRows)
				headLoss = autograd.Add(headLoss, autograd.BCEWithLogits(mr, maskTargets))
			}
			return autograd.Add(rpnLoss, headLoss)
		}, nil)
		totalLoss += loss
		n++
		w.steps++
	}
	w.epoch++
	return totalLoss / float64(n)
}

// boxAsAnchor converts a corner box to center form for delta encoding.
func boxAsAnchor(b datasets.Box) Anchor {
	return Anchor{
		CX: (b.X1 + b.X2) / 2, CY: (b.Y1 + b.Y2) / 2,
		W: math.Max(b.X2-b.X1, 1e-6), H: math.Max(b.Y2-b.Y1, 1e-6),
	}
}

// jitterBox perturbs a box by up to amp pixels on each side, clamped to the
// image.
func jitterBox(b datasets.Box, rng *tensor.RNG, amp, size float64) datasets.Box {
	j := func() float64 { return rng.Uniform(-amp, amp) }
	out := datasets.Box{
		X1: clampF(b.X1+j(), 0, size-1), Y1: clampF(b.Y1+j(), 0, size-1),
		X2: clampF(b.X2+j(), 1, size), Y2: clampF(b.Y2+j(), 1, size),
		Class: b.Class,
	}
	if out.X2 <= out.X1+1 {
		out.X2 = out.X1 + 1
	}
	if out.Y2 <= out.Y1+1 {
		out.Y2 = out.Y1 + 1
	}
	return out
}

// randomBox draws a random box within the image.
func randomBox(rng *tensor.RNG, size float64) datasets.Box {
	w := rng.Uniform(3, size/2)
	h := rng.Uniform(3, size/2)
	x1 := rng.Uniform(0, size-w)
	y1 := rng.Uniform(0, size-h)
	return datasets.Box{X1: x1, Y1: y1, X2: x1 + w, Y2: y1 + h}
}

// DetectInstances runs two-stage inference on one validation image.
func (w *InstanceSegmentation) DetectInstances(exs []datasets.DetExample, id int) ([]metrics.Detection, []metrics.Detection) {
	x := datasets.BatchImages(exs, []int{id})
	tape := autograd.NewTape()
	ctx := nn.NewCtx(tape, false, w.rng)
	obj, reg, feat := w.Net.rpnForward(ctx, autograd.Const(x))

	// Top proposals by objectness, decoded and NMS-ed class-agnostically.
	var cands []ScoredBox
	for ai, anchor := range w.Net.Anchors {
		score := 1 / (1 + math.Exp(-obj.Value.Data[ai]))
		if score < 0.3 {
			continue
		}
		var d [4]float64
		copy(d[:], reg.Value.Data[ai*4:(ai+1)*4])
		cands = append(cands, ScoredBox{Box: DecodeBox(anchor, d), Score: score})
	}
	props := NMS(cands, 0.4, 6)
	if len(props) == 0 {
		return nil, nil
	}
	batchIdx := make([]int, len(props))
	boxes := make([]datasets.Box, len(props))
	for i, p := range props {
		boxes[i] = clipBox(p.Box, float64(w.DS.Cfg.Size))
	}
	cls, boxReg, mask := w.Net.headsForward(ctx, feat, batchIdx, boxes)

	var boxDets, maskDets []metrics.Detection
	c1 := w.Net.Classes + 1
	size := w.DS.Cfg.Size
	var perClass = map[int][]int{}
	for i := range props {
		row := cls.Value.Data[i*c1 : (i+1)*c1]
		best, bi := row[0], 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		if bi == 0 {
			continue // background
		}
		perClass[bi] = append(perClass[bi], i)
	}
	// Detections are emitted in ascending class order: map iteration
	// order would otherwise leak into the boxDets/maskDets ordering and
	// break run-to-run bit-identity of the eval.
	classOrder := make([]int, 0, len(perClass))
	for cInd := range perClass {
		classOrder = append(classOrder, cInd)
	}
	sort.Ints(classOrder)
	for _, cInd := range classOrder {
		rows := perClass[cInd]
		var cb []ScoredBox
		rowOf := map[int]int{}
		for _, i := range rows {
			score := math.Exp(logSoftmaxAt(cls.Value.Data[i*c1:(i+1)*c1], cInd))
			var d [4]float64
			copy(d[:], boxReg.Value.Data[i*4:(i+1)*4])
			refined := clipBox(DecodeBox(boxAsAnchor(boxes[i]), d), float64(size))
			cb = append(cb, ScoredBox{Box: refined, Score: score})
			rowOf[len(cb)-1] = i
		}
		kept := NMS(cb, w.HP.NMSIoU, 4)
		for _, k := range kept {
			b := k.Box
			b.Class = cInd
			boxDets = append(boxDets, metrics.Detection{ImageID: id, Box: b, Score: k.Score})
			// Find the source row to paste its mask.
			srcRow := -1
			for ci, c := range cb {
				if c.Box == k.Box && c.Score == k.Score {
					srcRow = rowOf[ci]
					break
				}
			}
			if srcRow < 0 {
				continue
			}
			full := make([]bool, size*size)
			ms := w.Net.MaskSize
			for py := 0; py < size; py++ {
				for px := 0; px < size; px++ {
					fx := (float64(px) + 0.5 - b.X1) / math.Max(b.X2-b.X1, 1e-6)
					fy := (float64(py) + 0.5 - b.Y1) / math.Max(b.Y2-b.Y1, 1e-6)
					if fx < 0 || fx >= 1 || fy < 0 || fy >= 1 {
						continue
					}
					gx := int(fx * float64(ms))
					gy := int(fy * float64(ms))
					logit := mask.Value.Data[srcRow*ms*ms+gy*ms+gx]
					if logit > 0 {
						full[py*size+px] = true
					}
				}
			}
			maskDets = append(maskDets, metrics.Detection{ImageID: id, Box: b, Score: k.Score, Mask: full})
		}
	}
	return boxDets, maskDets
}

func clipBox(b datasets.Box, size float64) datasets.Box {
	out := b
	out.X1 = clampF(b.X1, 0, size-1)
	out.Y1 = clampF(b.Y1, 0, size-1)
	out.X2 = clampF(b.X2, out.X1+1, size)
	out.Y2 = clampF(b.Y2, out.Y1+1, size)
	return out
}

// BoxAP returns box mAP@0.5 on validation.
func (w *InstanceSegmentation) BoxAP() float64 {
	box, _ := w.evalAPs()
	return box
}

// MaskAP returns mask mAP@0.5 on validation.
func (w *InstanceSegmentation) MaskAP() float64 {
	_, mask := w.evalAPs()
	return mask
}

func (w *InstanceSegmentation) evalAPs() (boxAP, maskAP float64) {
	var boxDets, maskDets []metrics.Detection
	var boxGTs, maskGTs []metrics.GroundTruth
	size := w.DS.Cfg.Size
	for id, ex := range w.DS.Val {
		bd, md := w.DetectInstances(w.DS.Val, id)
		boxDets = append(boxDets, bd...)
		maskDets = append(maskDets, md...)
		for gi, b := range ex.Boxes {
			full := make([]bool, size*size)
			for p := 0; p < size*size; p++ {
				full[p] = ex.Masks[gi].Data[p] > 0.5
			}
			boxGTs = append(boxGTs, metrics.GroundTruth{ImageID: id, Box: b})
			maskGTs = append(maskGTs, metrics.GroundTruth{ImageID: id, Box: b, Mask: full})
		}
	}
	return metrics.MeanAP50(boxDets, boxGTs), meanMaskAP50(maskDets, maskGTs)
}

// meanMaskAP50 is mAP@0.5 with mask IoU.
func meanMaskAP50(dets []metrics.Detection, gts []metrics.GroundTruth) float64 {
	classes := map[int]bool{}
	for _, g := range gts {
		classes[g.Box.Class] = true
	}
	if len(classes) == 0 {
		return 0
	}
	order := make([]int, 0, len(classes))
	for cls := range classes {
		order = append(order, cls)
	}
	sort.Ints(order)
	total := 0.0
	for _, cls := range order {
		var cd []metrics.Detection
		var cg []metrics.GroundTruth
		for _, d := range dets {
			if d.Box.Class == cls {
				cd = append(cd, d)
			}
		}
		for _, g := range gts {
			if g.Box.Class == cls {
				cg = append(cg, g)
			}
		}
		total += metrics.APAtIoU(cd, cg, 0.5, true)
	}
	return total / float64(len(classes))
}

// Evaluate implements Workload: min of the two AP-to-target ratios, so 1.0
// means both Table-1 thresholds are met simultaneously.
func (w *InstanceSegmentation) Evaluate() float64 {
	box, mask := w.evalAPs()
	return math.Min(box/w.BoxTarget, mask/w.MaskTarget)
}
