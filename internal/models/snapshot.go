package models

// Parameter snapshots: the training→serving handoff. A finished training
// run's parameters are captured into a Snapshot, serialized to a
// deterministic byte format, and restored into a fresh model for
// forward-only inference (internal/serve) or a resumed run. The format is
// fully deterministic — same parameters, same bytes — and self-verifying:
// a rolling FNV-1a digest over every name, shape, and float64 bit pattern
// (the trajectory-digest construction of internal/grid) is appended at
// write time and checked at read time, so a truncated or corrupted
// snapshot fails loudly instead of silently serving garbage weights.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/autograd"
)

// snapMagic identifies snapshot files ("MLPSNAP" + format version 1).
const snapMagic = "MLPSNAP1"

// snapAllocChunk caps the up-front allocation for a declared value count:
// the data slice starts at most this many elements (512 KiB) and grows
// only as bytes actually arrive from the stream, so a corrupt count field
// cannot demand memory the input does not back.
const snapAllocChunk = 1 << 16

// FNV-1a constants (64-bit), as in internal/grid's trajectory digest.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// SnapParam is one captured parameter: name, shape, and a copy of the
// float64 values.
type SnapParam struct {
	Name  string
	Shape []int
	Data  []float64
}

// Snapshot is a captured parameter state of one benchmark model.
type Snapshot struct {
	// Benchmark is the benchmark ID the parameters belong to.
	Benchmark string
	// Params holds the captured parameters in model parameter-list order.
	Params []SnapParam
}

// TakeSnapshot deep-copies the current values of params. The copy is
// decoupled from training: a snapshot taken at convergence stays at
// convergence even if the model keeps training.
func TakeSnapshot(benchmark string, params []*autograd.Param) *Snapshot {
	s := &Snapshot{Benchmark: benchmark, Params: make([]SnapParam, len(params))}
	for i, p := range params {
		s.Params[i] = SnapParam{
			Name:  p.Name,
			Shape: append([]int(nil), p.Value.Shape...),
			Data:  append([]float64(nil), p.Value.Data...),
		}
	}
	return s
}

// digest folds the snapshot's semantic content — benchmark ID, parameter
// names, shapes, and exact float64 bit patterns, in order — through
// FNV-1a. Two snapshots share a digest only if they are bit-identical.
func (s *Snapshot) digest() uint64 {
	h := fnvOffset
	mix := func(b byte) {
		h ^= uint64(b)
		h *= fnvPrime
	}
	mix64 := func(v uint64) {
		for sh := 0; sh < 64; sh += 8 {
			mix(byte(v >> sh))
		}
	}
	str := func(t string) {
		mix64(uint64(len(t)))
		for i := 0; i < len(t); i++ {
			mix(t[i])
		}
	}
	str(s.Benchmark)
	mix64(uint64(len(s.Params)))
	for _, p := range s.Params {
		str(p.Name)
		mix64(uint64(len(p.Shape)))
		for _, d := range p.Shape {
			mix64(uint64(d))
		}
		mix64(uint64(len(p.Data)))
		for _, v := range p.Data {
			mix64(math.Float64bits(v))
		}
	}
	return h
}

// Digest renders the snapshot's FNV-1a content digest as a fixed-width hex
// string — the value cross-checked between trainer and server (and logged
// under mlog.KeySnapshotDigest).
func (s *Snapshot) Digest() string { return fmt.Sprintf("%016x", s.digest()) }

// NumValues returns the total number of scalar parameter values captured.
func (s *Snapshot) NumValues() int {
	n := 0
	for _, p := range s.Params {
		n += len(p.Data)
	}
	return n
}

// Save writes the snapshot in the deterministic binary format:
//
//	magic "MLPSNAP1"
//	benchmark: u32 length + bytes
//	u32 parameter count
//	per parameter: name (u32+bytes), u32 ndims, u32 dims..., u32 count,
//	               count × float64 bits (little-endian)
//	u64 FNV-1a digest of the semantic content (as Digest)
//
// All integers are little-endian. The format contains no timestamps or
// addresses: identical parameters produce identical bytes.
func (s *Snapshot) Save(w io.Writer) error {
	bw := &countWriter{w: w}
	write := func(v any) {
		if bw.err == nil {
			bw.err = binary.Write(bw, binary.LittleEndian, v)
		}
	}
	str := func(t string) {
		write(uint32(len(t)))
		if bw.err == nil {
			_, bw.err = io.WriteString(bw, t)
		}
	}
	if _, err := io.WriteString(bw, snapMagic); err != nil {
		return fmt.Errorf("models: snapshot save: %w", err)
	}
	str(s.Benchmark)
	write(uint32(len(s.Params)))
	for _, p := range s.Params {
		str(p.Name)
		write(uint32(len(p.Shape)))
		for _, d := range p.Shape {
			write(uint32(d))
		}
		write(uint32(len(p.Data)))
		for _, v := range p.Data {
			write(math.Float64bits(v))
		}
	}
	write(s.digest())
	if bw.err != nil {
		return fmt.Errorf("models: snapshot save: %w", bw.err)
	}
	return nil
}

// countWriter threads one sticky error through the many binary writes.
type countWriter struct {
	w   io.Writer
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.err = err
	return n, err
}

// LoadSnapshot reads a snapshot written by Save, recomputes the content
// digest, and rejects any mismatch (truncation, corruption, format drift).
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	br := &stickyReader{r: r}
	read := func(v any) {
		if br.err == nil {
			br.err = binary.Read(br, binary.LittleEndian, v)
		}
	}
	readStr := func() string {
		var n uint32
		read(&n)
		if br.err != nil {
			return ""
		}
		if n > 1<<20 {
			br.err = fmt.Errorf("string length %d exceeds sanity bound", n)
			return ""
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			br.err = err
			return ""
		}
		return string(b)
	}
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("models: snapshot load: %w", err)
	}
	if string(magic) != snapMagic {
		return nil, fmt.Errorf("models: snapshot load: bad magic %q (want %q)", magic, snapMagic)
	}
	s := &Snapshot{Benchmark: readStr()}
	var np uint32
	read(&np)
	if br.err == nil && np > 1<<20 {
		br.err = fmt.Errorf("parameter count %d exceeds sanity bound", np)
	}
	for i := 0; br.err == nil && i < int(np); i++ {
		p := SnapParam{Name: readStr()}
		var nd uint32
		read(&nd)
		if br.err == nil && nd > 16 {
			br.err = fmt.Errorf("parameter %q has %d dims", p.Name, nd)
		}
		for d := 0; br.err == nil && d < int(nd); d++ {
			var dim uint32
			read(&dim)
			p.Shape = append(p.Shape, int(dim))
		}
		var cnt uint32
		read(&cnt)
		if br.err == nil && cnt > 1<<28 {
			br.err = fmt.Errorf("parameter %q has %d values", p.Name, cnt)
		}
		if br.err == nil {
			// The count arrives from the (not yet digest-verified) stream, so
			// allocation must be bounded by the bytes that actually follow —
			// a corrupt header claiming 2^28 values on a truncated stream must
			// fail at the read, not allocate gigabytes up front. Grow in
			// bounded chunks as the values arrive.
			p.Data = make([]float64, 0, min(int(cnt), snapAllocChunk))
			for j := 0; br.err == nil && j < int(cnt); j++ {
				var bits uint64
				read(&bits)
				if br.err == nil {
					p.Data = append(p.Data, math.Float64frombits(bits))
				}
			}
			if br.err != nil {
				br.err = fmt.Errorf("parameter %q truncated at value %d of %d: %w", p.Name, len(p.Data), cnt, br.err)
			}
		}
		s.Params = append(s.Params, p)
	}
	var want uint64
	read(&want)
	if br.err != nil {
		return nil, fmt.Errorf("models: snapshot load: %w", br.err)
	}
	if got := s.digest(); got != want {
		return nil, fmt.Errorf("models: snapshot load: digest mismatch: content %016x, trailer %016x (corrupted or truncated snapshot)", got, want)
	}
	return s, nil
}

// stickyReader threads one sticky error through the many binary reads.
type stickyReader struct {
	r   io.Reader
	err error
}

func (s *stickyReader) Read(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n, err := s.r.Read(p)
	if err != nil {
		s.err = err
	}
	return n, err
}

// SaveFile writes the snapshot to a file.
func (s *Snapshot) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("models: snapshot save: %w", err)
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshotFile reads a snapshot from a file.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("models: snapshot load: %w", err)
	}
	defer f.Close()
	return LoadSnapshot(f)
}

// Restore copies the snapshot's values into params, matching snapshot
// entries to parameters positionally and verifying name and shape at each
// position — a snapshot restores only into the architecture it was taken
// from. Gradients are untouched.
func (s *Snapshot) Restore(params []*autograd.Param) error {
	if len(params) != len(s.Params) {
		return fmt.Errorf("models: snapshot restore: model has %d parameters, snapshot %d", len(params), len(s.Params))
	}
	for i, p := range params {
		sp := s.Params[i]
		if p.Name != sp.Name {
			return fmt.Errorf("models: snapshot restore: parameter %d is %q, snapshot has %q", i, p.Name, sp.Name)
		}
		if !shapeEq(p.Value.Shape, sp.Shape) {
			return fmt.Errorf("models: snapshot restore: parameter %q has shape %v, snapshot %v", p.Name, p.Value.Shape, sp.Shape)
		}
		if len(sp.Data) != len(p.Value.Data) {
			return fmt.Errorf("models: snapshot restore: parameter %q has %d values, snapshot %d", p.Name, len(p.Value.Data), len(sp.Data))
		}
		copy(p.Value.Data, sp.Data)
	}
	return nil
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
