package models

// Microbatch adapters: the internal/dist data-parallel engine drives
// workloads through a finer-grained contract than Workload — it owns the
// loader, tape, and optimizer step itself and only needs the forward pass
// for one microshard of a global batch. The methods below satisfy
// dist.Trainable structurally. All stochasticity (negative sampling,
// augmentation) flows through the rng argument, which the engine derives
// from (seed, step, microshard), so a microshard sees identical randomness
// at every worker count — the bit-identity invariant dist's tests assert.

import (
	"repro/internal/autograd"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Params exposes the recommendation workload's trainable parameters
// (dist.Trainable contract).
func (w *Recommendation) Params() []*autograd.Param { return w.params }

// MicrobatchLoss builds the NCF training loss for one microshard of
// interaction indices (dist.Trainable contract). Negative sampling draws
// from the supplied rng rather than the workload's sequential stream.
func (w *Recommendation) MicrobatchLoss(tape *autograd.Tape, idx []int, rng *tensor.RNG) *autograd.Var {
	users, items, labels := w.DS.TrainBatch(idx, w.HP.NegRatio, rng)
	ctx := nn.NewCtx(tape, true, rng)
	logits := w.Net.Forward(ctx, users, items)
	return autograd.BCEWithLogits(logits, labels)
}

// Params exposes the image-classification workload's trainable parameters
// (dist.Trainable contract).
func (w *ImageClassification) Params() []*autograd.Param { return w.params }

// MicrobatchLoss builds the ResNet training loss for one microshard of
// image indices (dist.Trainable contract). Augmentation draws from the
// supplied rng. Batch-norm statistics are computed per microshard (ghost
// batch norm, as in real data-parallel training without synchronized BN),
// and running eval statistics accumulate per replica; trainable parameters
// remain bit-identical across replicas. The Figure-1 precision policy is
// not applied on this path — data-parallel runs train in full precision.
func (w *ImageClassification) MicrobatchLoss(tape *autograd.Tape, idx []int, rng *tensor.RNG) *autograd.Var {
	var aug *datasets.Augment
	if w.HP.Augment {
		aug = &datasets.Augment{Flip: true, CropPad: 1, Jitter: 0.1, RNG: rng}
	}
	x, labels := w.DS.Batch(true, idx, aug)
	ctx := nn.NewCtx(tape, true, rng)
	logits := w.Net.Forward(ctx, autograd.Const(x))
	return autograd.SoftmaxCrossEntropy(logits, labels)
}
