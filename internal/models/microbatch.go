package models

// Microbatch adapters: the internal/dist data-parallel engine drives
// workloads through a finer-grained contract than Workload — it owns the
// loader, tape, and optimizer step itself and only needs the forward pass
// for one microshard of a global batch. The methods below satisfy
// dist.Trainable structurally. All stochasticity (negative sampling,
// augmentation) flows through the rng argument, which the engine derives
// from (seed, step, microshard), so a microshard sees identical randomness
// at every worker count — the bit-identity invariant dist's tests assert.

import (
	"repro/internal/autograd"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Params exposes the recommendation workload's trainable parameters
// (dist.Trainable contract).
func (w *Recommendation) Params() []*autograd.Param { return w.params }

// MicrobatchLoss builds the NCF training loss for one microshard of
// interaction indices (dist.Trainable contract). Negative sampling draws
// from the supplied rng rather than the workload's sequential stream.
// Batch assembly reuses the workload's persistent buffers, so a warm call
// allocates nothing.
func (w *Recommendation) MicrobatchLoss(tape *autograd.Tape, idx []int, rng *tensor.RNG) *autograd.Var {
	w.busers, w.bitems, w.blabels = w.DS.AppendTrainBatch(
		w.busers[:0], w.bitems[:0], w.blabels[:0], idx, w.HP.NegRatio, rng)
	w.ctx = nn.Ctx{Tape: tape, Train: true, RNG: rng}
	logits := w.Net.Forward(&w.ctx, w.busers, w.bitems)
	return autograd.BCEWithLogits(logits, w.blabels)
}

// Params exposes the image-classification workload's trainable parameters
// (dist.Trainable contract).
func (w *ImageClassification) Params() []*autograd.Param { return w.params }

// MicrobatchLoss builds the ResNet training loss for one microshard of
// image indices (dist.Trainable contract). Augmentation draws from the
// supplied rng. Batch-norm statistics are computed per microshard (ghost
// batch norm, as in real data-parallel training without synchronized BN),
// and running eval statistics accumulate per replica; trainable parameters
// remain bit-identical across replicas. The Figure-1 precision policy is
// not applied on this path — data-parallel runs train in full precision.
func (w *ImageClassification) MicrobatchLoss(tape *autograd.Tape, idx []int, rng *tensor.RNG) *autograd.Var {
	var aug *datasets.Augment
	if w.HP.Augment {
		if w.mbAug == nil {
			w.mbAug = &datasets.Augment{Flip: true, CropPad: 1, Jitter: 0.1}
		}
		w.mbAug.RNG = rng
		aug = w.mbAug
	}
	w.bx, w.blabels = w.DS.BatchInto(w.bx, w.blabels, true, idx, aug)
	w.ctx = nn.Ctx{Tape: tape, Train: true, RNG: rng}
	logits := w.Net.Forward(&w.ctx, tape.ConstOf(w.bx))
	return autograd.SoftmaxCrossEntropy(logits, w.blabels)
}
