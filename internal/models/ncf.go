package models

import (
	"fmt"

	"repro/internal/autograd"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/precision"
	"repro/internal/tensor"
)

// NCF is Neural Collaborative Filtering (He et al., 2017b), the
// recommendation benchmark of §3.1.5: a NeuMF model fusing a generalized
// matrix factorization (GMF) branch with an MLP branch over user/item
// embeddings, trained with binary cross-entropy on implicit feedback.
type NCF struct {
	UserGMF, ItemGMF *nn.Embedding
	UserMLP, ItemMLP *nn.Embedding
	MLP              *nn.MLP
	Out              *nn.Linear
}

// NewNCF builds the NeuMF network.
func NewNCF(users, items, gmfDim, mlpDim int, rng *tensor.RNG) *NCF {
	return &NCF{
		UserGMF: nn.NewEmbedding("user_gmf", users, gmfDim, rng),
		ItemGMF: nn.NewEmbedding("item_gmf", items, gmfDim, rng),
		UserMLP: nn.NewEmbedding("user_mlp", users, mlpDim, rng),
		ItemMLP: nn.NewEmbedding("item_mlp", items, mlpDim, rng),
		MLP:     nn.NewMLP("mlp", []int{2 * mlpDim, 2 * mlpDim, mlpDim}, rng),
		Out:     nn.NewLinearXavier("out", gmfDim+mlpDim, 1, true, rng),
	}
}

// Forward returns interaction logits [n,1] for parallel user/item id lists.
func (m *NCF) Forward(ctx *nn.Ctx, users, items []int) *autograd.Var {
	gmf := autograd.Mul(m.UserGMF.Forward(ctx, users), m.ItemGMF.Forward(ctx, items))
	mlpIn := autograd.ConcatCols(m.UserMLP.Forward(ctx, users), m.ItemMLP.Forward(ctx, items))
	mlp := autograd.ReLU(m.MLP.Forward(ctx, mlpIn))
	return m.Out.Forward(ctx, autograd.ConcatCols(gmf, mlp))
}

// Params implements nn.Module.
func (m *NCF) Params() []*autograd.Param {
	return nn.CollectParams(m.UserGMF, m.ItemGMF, m.UserMLP, m.ItemMLP, m.MLP, m.Out)
}

// NCFHParams are the tunables of the recommendation benchmark.
type NCFHParams struct {
	Batch    int
	LR       float64
	GMFDim   int
	MLPDim   int
	NegRatio int // negatives sampled per positive during training
	EvalNegs int // negatives per user in HR@10 evaluation (99 in the paper)

	// Numerics selects the training compute regime (§2.2.3). The zero
	// value is the full-precision float64 reference path, bit-identical
	// to pre-numerics behavior. Evaluation always runs in float64.
	Numerics precision.Numerics
}

// DefaultNCFHParams is the reference configuration.
func DefaultNCFHParams() NCFHParams {
	return NCFHParams{Batch: 64, LR: 0.002, GMFDim: 8, MLPDim: 8, NegRatio: 4, EvalNegs: 99}
}

// Recommendation is the NCF workload over the fractal-expansion dataset.
type Recommendation struct {
	HP  NCFHParams
	DS  *datasets.RecDataset
	Net *NCF
	Opt opt.Optimizer

	params []*autograd.Param
	loader *data.Loader
	rng    *tensor.RNG
	seed   uint64
	epoch  int
	steps  int

	// Steady-state reuse: one persistent tape plus batch-assembly buffers,
	// so warm training steps allocate nothing.
	tape    *autograd.Tape
	ctx     nn.Ctx
	busers  []int
	bitems  []int
	blabels []float64

	mp *precision.MP // mixed-precision trainer; nil in non-mixed regimes
}

// NewRecommendation builds the workload.
func NewRecommendation(ds *datasets.RecDataset, hp NCFHParams, seed uint64) *Recommendation {
	rng := tensor.NewRNG(seed)
	net := NewNCF(ds.Users, ds.Items, hp.GMFDim, hp.MLPDim, rng.Split(1))
	params := net.Params()
	w := &Recommendation{
		HP: hp, DS: ds, Net: net,
		Opt:    opt.NewAdam(params, hp.LR, 0.9, 0.999, 1e-8, 0),
		params: params,
		loader: data.NewLoader(len(ds.Train), hp.Batch, rng.Split(2)),
		rng:    rng.Split(3),
		seed:   seed,
		tape:   autograd.NewTape(),
		mp:     hp.Numerics.NewTrainer(params),
	}
	w.tape.SetDType(hp.Numerics.Compute)
	return w
}

// Name implements Workload.
func (w *Recommendation) Name() string { return "recommendation" }

// Epoch implements Workload.
func (w *Recommendation) Epoch() int { return w.epoch }

// Steps implements StepCounter.
func (w *Recommendation) Steps() int { return w.steps }

// TrainEpoch implements Workload.
func (w *Recommendation) TrainEpoch() float64 {
	totalLoss, n := 0.0, 0
	for i := 0; i < w.loader.StepsPerEpoch(); i++ {
		idx, _ := w.loader.Next()
		w.busers, w.bitems, w.blabels = w.DS.AppendTrainBatch(
			w.busers[:0], w.bitems[:0], w.blabels[:0], idx, w.HP.NegRatio, w.rng)
		users, items, labels := w.busers, w.bitems, w.blabels
		loss := trainStepMP(w.tape, w.params, w.Opt, w.mp, func(tape *autograd.Tape) *autograd.Var {
			ctx := nn.NewCtx(tape, true, w.rng)
			logits := w.Net.Forward(ctx, users, items)
			return autograd.BCEWithLogits(logits, labels)
		}, nil)
		totalLoss += loss
		n++
		w.steps++
	}
	w.epoch++
	return totalLoss / float64(n)
}

// ncfSampleRNG labels the negative-sampling stream in checkpoints.
const ncfSampleRNG = "ncf_negative_sampling"

// CaptureTrainState snapshots the full mid-run training state: parameters,
// Adam moments, the loss-scale position (mixed regimes), the loader
// cursor, the negative-sampling stream, and the step/epoch counters. A run
// restored from the result continues bit-identically to this one.
func (w *Recommendation) CaptureTrainState() *TrainState {
	st := &TrainState{
		Step:   w.steps,
		Epoch:  w.epoch,
		Params: TakeSnapshot(w.Name(), w.params),
		Loader: ptr(w.loader.State()),
		RNGs:   []RNGEntry{{Label: ncfSampleRNG, State: w.rng.State()}},
	}
	if o, ok := w.Opt.(opt.Stateful); ok {
		st.Opts = []opt.State{o.CaptureState()}
	}
	if w.mp != nil {
		st.MP = ptr(w.mp.State())
	}
	return st
}

// RestoreTrainState installs a state captured by CaptureTrainState on a
// freshly built workload of the same seed and hyperparameters.
func (w *Recommendation) RestoreTrainState(st *TrainState) error {
	if st.Params == nil {
		return fmt.Errorf("models: train state has no parameter snapshot")
	}
	if err := st.Params.Restore(w.params); err != nil {
		return err
	}
	if len(st.Opts) != 1 {
		return fmt.Errorf("models: train state has %d optimizer states, recommendation wants 1", len(st.Opts))
	}
	o, ok := w.Opt.(opt.Stateful)
	if !ok {
		return fmt.Errorf("models: recommendation optimizer %T cannot restore state", w.Opt)
	}
	if err := o.RestoreState(st.Opts[0]); err != nil {
		return err
	}
	if (st.MP != nil) != (w.mp != nil) {
		return fmt.Errorf("models: train state mixed-precision presence %v != workload %v", st.MP != nil, w.mp != nil)
	}
	if st.MP != nil {
		w.mp.SetState(*st.MP)
	}
	if st.Loader == nil {
		return fmt.Errorf("models: train state has no loader position")
	}
	if err := w.loader.SetState(*st.Loader); err != nil {
		return err
	}
	rs, err := st.rngNamed(ncfSampleRNG)
	if err != nil {
		return err
	}
	w.rng.SetState(rs)
	w.steps = st.Step
	w.epoch = st.Epoch
	return nil
}

// ptr boxes a value (checkpoint-state convenience).
func ptr[T any](v T) *T { return &v }

// Evaluate implements Workload: leave-one-out HR@10. The evaluation
// negative lists are drawn from a fixed seed so the metric is comparable
// across epochs and runs.
func (w *Recommendation) Evaluate() float64 {
	evalRNG := tensor.NewRNG(w.seed ^ 0xE7A1)
	users, candidates := w.DS.EvalLists(w.HP.EvalNegs, evalRNG)
	scores := make([][]float64, len(users))
	tape := autograd.NewTape()
	ctx := nn.NewCtx(tape, false, w.rng)
	for i, u := range users {
		cand := candidates[i]
		us := make([]int, len(cand))
		for j := range us {
			us[j] = u
		}
		logits := w.Net.Forward(ctx, us, cand)
		scores[i] = append([]float64(nil), logits.Value.Data...)
	}
	return metrics.HitRateAtK(scores, 10)
}
