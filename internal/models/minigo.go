package models

import (
	"math"

	"repro/internal/autograd"
	"repro/internal/goboard"
	"repro/internal/mcts"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// MiniGoNet is the dual-head policy/value network of the reinforcement-
// learning benchmark (§3.1.4): a small convolutional trunk with a policy
// head over all moves (board points + pass) and a tanh value head, as in
// AlphaGo Zero / MiniGo.
type MiniGoNet struct {
	trunk1 *nn.Conv2d
	bn1    *nn.BatchNorm2d
	block  *residualBlock
	// Policy head.
	polConv *nn.Conv2d
	polBN   *nn.BatchNorm2d
	polFC   *nn.Linear
	// Value head.
	valConv *nn.Conv2d
	valBN   *nn.BatchNorm2d
	valFC1  *nn.Linear
	valFC2  *nn.Linear
	Size    int
}

// NewMiniGoNet builds the network for a size×size board.
func NewMiniGoNet(size, width int, rng *tensor.RNG) *MiniGoNet {
	n := size * size
	return &MiniGoNet{
		trunk1:  nn.NewConv2d("mg.trunk", 3, width, 3, 1, 1, false, rng),
		bn1:     nn.NewBatchNorm2d("mg.bn1", width),
		block:   newResidualBlock("mg.res", width, width, 1, rng),
		polConv: nn.NewConv2d("mg.pconv", width, 2, 1, 1, 0, true, rng),
		polBN:   nn.NewBatchNorm2d("mg.pbn", 2),
		polFC:   nn.NewLinearXavier("mg.pfc", 2*n, n+1, true, rng),
		valConv: nn.NewConv2d("mg.vconv", width, 1, 1, 1, 0, true, rng),
		valBN:   nn.NewBatchNorm2d("mg.vbn", 1),
		valFC1:  nn.NewLinear("mg.vfc1", n, 16, true, rng),
		valFC2:  nn.NewLinearXavier("mg.vfc2", 16, 1, true, rng),
		Size:    size,
	}
}

// Forward maps feature planes [B, 3, S, S] to policy logits [B, S²+1] and
// value [B, 1] (pre-tanh applied).
func (m *MiniGoNet) Forward(ctx *nn.Ctx, x *autograd.Var) (policy, value *autograd.Var) {
	h := autograd.ReLU(m.bn1.Forward(ctx, m.trunk1.Forward(ctx, x)))
	h = m.block.forward(ctx, h)
	n := m.Size * m.Size
	b := x.Value.Shape[0]
	p := autograd.ReLU(m.polBN.Forward(ctx, m.polConv.Forward(ctx, h)))
	policy = m.polFC.Forward(ctx, autograd.Reshape(p, b, 2*n))
	v := autograd.ReLU(m.valBN.Forward(ctx, m.valConv.Forward(ctx, h)))
	v = autograd.ReLU(m.valFC1.Forward(ctx, autograd.Reshape(v, b, n)))
	value = autograd.Tanh(m.valFC2.Forward(ctx, v))
	return policy, value
}

// Params implements nn.Module.
func (m *MiniGoNet) Params() []*autograd.Param {
	ps := nn.CollectParams(m.trunk1, m.bn1)
	ps = append(ps, m.block.Params()...)
	return append(ps, nn.CollectParams(m.polConv, m.polBN, m.polFC, m.valConv, m.valBN, m.valFC1, m.valFC2)...)
}

// netEvaluator adapts MiniGoNet to the mcts.Evaluator interface. As in
// AlphaGo (Silver et al., 2016), the position value blends the value head
// with a fast position-evaluation signal (here the area score, playing the
// role of rollouts) — this keeps early self-play search meaningful while
// the value head is still untrained.
type netEvaluator struct {
	net *MiniGoNet
	rng *tensor.RNG
	// mix is the weight of the value head vs. the score signal (0.5 in
	// AlphaGo's value/rollout blend).
	mix  float64
	komi float64
}

// Evaluate implements mcts.Evaluator.
func (e *netEvaluator) Evaluate(b *goboard.Board) ([]float64, float64) {
	feats := b.Features()
	x := tensor.FromSlice(feats, 1, 3, b.Size, b.Size)
	tape := autograd.NewTape()
	ctx := nn.NewCtx(tape, false, e.rng)
	policy, value := e.net.Forward(ctx, autograd.Const(x))
	// Softmax the policy logits.
	probs := make([]float64, policy.Value.Size())
	mx := policy.Value.Max()
	s := 0.0
	for i, v := range policy.Value.Data {
		probs[i] = math.Exp(v - mx)
		s += probs[i]
	}
	for i := range probs {
		probs[i] /= s
	}
	// Suppress the pass prior while the board is mostly open, mirroring the
	// oracle: passing early floods the replay buffer with degenerate
	// "pass" targets and collapses the policy head.
	if b.MoveCount < b.Size*b.Size {
		probs[b.Pass()] *= 0.05
	}
	scoreV := math.Tanh(b.Score(e.komi) / float64(b.Size))
	if b.ToMove == goboard.White {
		scoreV = -scoreV
	}
	v := e.mix*value.Value.Data[0] + (1-e.mix)*scoreV
	return probs, v
}

// MiniGoHParams are the tunables of the reinforcement-learning benchmark.
type MiniGoHParams struct {
	BoardSize     int
	Width         int
	LR            float64
	Momentum      float64
	GamesPerEpoch int
	Sims          int // MCTS simulations per self-play move
	TrainBatch    int
	// OracleSims is the search depth of the reference-move oracle.
	OracleSims  int
	OracleGames int // games used to harvest evaluation positions
	MaxMoves    int
	// ReplayCap bounds the self-play replay buffer (positions).
	ReplayCap int
}

// DefaultMiniGoHParams is the reference configuration. The paper plays 9×9;
// that board is supported (and benchmarked), while the default harness runs
// a smaller board so laptop-scale suite runs stay affordable — the paper's
// own affordability goal.
func DefaultMiniGoHParams() MiniGoHParams {
	return MiniGoHParams{
		BoardSize: 5, Width: 8, LR: 0.05, Momentum: 0.9,
		GamesPerEpoch: 8, Sims: 48, TrainBatch: 32,
		OracleSims: 96, OracleGames: 4, MaxMoves: 30, ReplayCap: 512,
	}
}

// replayExample is one self-play training example.
type replayExample struct {
	feats  []float64
	policy []float64
	value  float64
}

// ReinforcementLearning is the MiniGo workload: self-play data generation
// with MCTS (the defining compute profile of §3.1.4 — training data comes
// from model forward passes, not a fixed dataset), gradient updates on the
// replay buffer, and quality measured as the fraction of oracle reference
// moves the raw policy predicts.
type ReinforcementLearning struct {
	HP  MiniGoHParams
	Net *MiniGoNet
	Opt opt.Optimizer

	evalFeats [][]float64
	evalMoves []int

	replay       []replayExample
	params       []*autograd.Param
	rng          *tensor.RNG
	epoch, steps int
}

// NewReinforcementLearning builds the workload and generates the oracle
// reference positions (the stand-in for the paper's human pro games —
// dataset preparation, excluded from timing per §3.2.1).
func NewReinforcementLearning(hp MiniGoHParams, seed uint64) *ReinforcementLearning {
	rng := tensor.NewRNG(seed)
	net := NewMiniGoNet(hp.BoardSize, hp.Width, rng.Split(1))
	params := net.Params()
	w := &ReinforcementLearning{
		HP: hp, Net: net,
		Opt:    opt.NewSGD(params, hp.LR, hp.Momentum, 1e-4, opt.TorchStyle),
		params: params,
		rng:    rng.Split(2),
	}
	// Oracle reference games come from a fixed seed independent of the run
	// seed: every run predicts the same reference moves, as with a shared
	// human-games dataset.
	oracleCfg := mcts.Config{Sims: hp.OracleSims, CPuct: 1.4, Komi: 6.5}
	oracle := mcts.New(oracleCfg, mcts.TacticalEvaluator{Komi: 6.5}, tensor.NewRNG(0xC0FFEE))
	for g := 0; g < hp.OracleGames; g++ {
		rec := mcts.SelfPlay(oracle, hp.BoardSize, 2, hp.MaxMoves)
		for i := range rec.Features {
			w.evalFeats = append(w.evalFeats, rec.Features[i])
			w.evalMoves = append(w.evalMoves, rec.Moves[i])
		}
	}
	return w
}

// Name implements Workload.
func (w *ReinforcementLearning) Name() string { return "reinforcement_learning" }

// Epoch implements Workload.
func (w *ReinforcementLearning) Epoch() int { return w.epoch }

// Steps implements StepCounter.
func (w *ReinforcementLearning) Steps() int { return w.steps }

// TrainEpoch implements Workload: GamesPerEpoch self-play games are added
// to the replay buffer, then one pass of gradient steps runs over it.
func (w *ReinforcementLearning) TrainEpoch() float64 {
	cfg := mcts.Config{Sims: w.HP.Sims, CPuct: 1.4, Komi: 6.5, DirichletEps: 0.15, DirichletAlpha: 0.7}
	search := mcts.New(cfg, &netEvaluator{net: w.Net, rng: w.rng, mix: 0.5, komi: 6.5}, w.rng.Split(uint64(w.epoch)*2+1))
	for g := 0; g < w.HP.GamesPerEpoch; g++ {
		rec := mcts.SelfPlay(search, w.HP.BoardSize, 4, w.HP.MaxMoves)
		for i := range rec.Features {
			w.replay = append(w.replay, replayExample{
				feats:  rec.Features[i],
				policy: mcts.SharpenDist(rec.Policies[i], 2),
				value:  rec.Values[i],
			})
		}
	}
	if len(w.replay) > w.HP.ReplayCap {
		w.replay = w.replay[len(w.replay)-w.HP.ReplayCap:]
	}

	s := w.HP.BoardSize
	moves := s*s + 1
	// Several optimization passes per epoch of fresh games: self-play data
	// generation dominates wall-clock, so reusing the buffer is cheap.
	var order []int
	for p := 0; p < 3; p++ {
		order = append(order, w.rng.Perm(len(w.replay))...)
	}
	totalLoss, n := 0.0, 0
	for lo := 0; lo < len(order); lo += w.HP.TrainBatch {
		hi := lo + w.HP.TrainBatch
		if hi > len(order) {
			hi = len(order)
		}
		batch := order[lo:hi]
		b := len(batch)
		x := tensor.New(b, 3, s, s)
		pol := tensor.New(b, moves)
		val := tensor.New(b, 1)
		for i, id := range batch {
			ex := w.replay[id]
			// Random dihedral symmetry per sample (8-fold augmentation).
			f, p := augmentExample(ex.feats, ex.policy, s, w.rng.Intn(8))
			copy(x.Data[i*3*s*s:(i+1)*3*s*s], f)
			copy(pol.Data[i*moves:(i+1)*moves], p)
			val.Data[i] = ex.value
		}
		loss := trainStep(nil, w.params, w.Opt, func(tape *autograd.Tape) *autograd.Var {
			ctx := nn.NewCtx(tape, true, w.rng)
			policy, value := w.Net.Forward(ctx, autograd.Const(x))
			polLoss := autograd.SoftCrossEntropy(policy, pol)
			valLoss := autograd.MSE(value, val)
			return autograd.Add(polLoss, valLoss)
		}, nil)
		totalLoss += loss
		n++
		w.steps++
	}
	w.epoch++
	if n == 0 {
		return 0
	}
	return totalLoss / float64(n)
}

// Evaluate implements Workload: the fraction of oracle reference moves the
// raw policy network predicts (Table 1: "40.0% pro move prediction").
func (w *ReinforcementLearning) Evaluate() float64 {
	if len(w.evalFeats) == 0 {
		return 0
	}
	s := w.HP.BoardSize
	b := len(w.evalFeats)
	x := tensor.New(b, 3, s, s)
	for i, f := range w.evalFeats {
		copy(x.Data[i*3*s*s:(i+1)*3*s*s], f)
	}
	tape := autograd.NewTape()
	ctx := nn.NewCtx(tape, false, w.rng)
	policy, _ := w.Net.Forward(ctx, autograd.Const(x))
	pred := policy.Value.ArgMaxRows()
	return metrics.MoveMatch(pred, w.evalMoves)
}

// tensorFrom wraps one feature vector as a [1,3,S,S] tensor (test helper).
func tensorFrom(feats []float64, s int) *tensor.Tensor {
	return tensor.FromSlice(append([]float64(nil), feats...), 1, 3, s, s)
}

// predictOne returns the policy argmax for a single position (test helper).
func (w *ReinforcementLearning) predictOne(x *tensor.Tensor) int {
	tape := autograd.NewTape()
	ctx := nn.NewCtx(tape, false, w.rng)
	policy, _ := w.Net.Forward(ctx, autograd.Const(x))
	return policy.Value.ArgMax()
}

// symIndex maps point (y,x) through dihedral symmetry k (0..7): three
// rotation bits plus reflection, the 8-fold augmentation MiniGo applies to
// self-play examples.
func symIndex(p, s, k int) int {
	y, x := p/s, p%s
	if k >= 4 {
		x = s - 1 - x // reflect
	}
	for r := 0; r < k%4; r++ { // rotate 90° r times
		y, x = x, s-1-y
	}
	return y*s + x
}

// augmentExample applies dihedral symmetry k to one replay example,
// returning transformed feature planes and policy target (pass is fixed).
func augmentExample(feats, policy []float64, s, k int) ([]float64, []float64) {
	if k == 0 {
		return feats, policy
	}
	n := s * s
	of := make([]float64, len(feats))
	for plane := 0; plane < 3; plane++ {
		for p := 0; p < n; p++ {
			of[plane*n+symIndex(p, s, k)] = feats[plane*n+p]
		}
	}
	op := make([]float64, len(policy))
	for p := 0; p < n; p++ {
		op[symIndex(p, s, k)] = policy[p]
	}
	op[n] = policy[n] // pass
	return of, op
}
