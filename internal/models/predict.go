package models

// Forward-only inference entry points: the serving half of the
// train-then-serve pipeline. A predictor owns a trained network
// (restored from a Snapshot) plus a preloaded sample pool, and hands out
// per-worker inference contexts that run batched forward passes with no
// backward pass, no optimizer, and — once warm — no heap allocations.
// The harness side (internal/serve) issues sample *indices*, LoadGen
// style; the context maps each index to its preloaded input.
//
// Predictions are a pure function of (parameters, sample): every output
// row of the NCF forward pass depends only on its own input row, and the
// GEMM engine accumulates each output element in strictly ascending-k
// order regardless of batch shape or worker count — so the prediction for
// a sample is bit-identical whether it is served alone, inside any batch,
// or by any number of concurrent contexts.

import (
	"fmt"

	"repro/internal/autograd"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// RecPredictor serves a trained NCF model over a preloaded pool of
// (user, item) query samples. It is safe for concurrent use through
// per-worker contexts (NewContext): the parameters are read-only after
// construction and each context owns its tape and staging buffers.
type RecPredictor struct {
	Net *NCF

	users []int // pool: users[i] is sample i's user id
	items []int // pool: items[i] is sample i's item id

	params []*autograd.Param
	digest string
}

// RecPoolNegatives is the default number of sampled negative items per
// user in the prediction sample pool (the held-out positive makes the
// per-user candidate count RecPoolNegatives+1).
const RecPoolNegatives = 7

// NewRecPredictor builds a forward-only NCF predictor: a fresh network
// with the given hyperparameter dimensions, parameters restored from
// snap, and a sample pool drawn from the dataset's leave-one-out
// evaluation protocol — for every user, the held-out positive plus
// negPerUser sampled negatives, flattened into (user, item) pairs. The
// pool is a pure function of (ds, negPerUser, poolSeed), so trainer and
// server agree on what sample i means. A nil snap serves the freshly
// initialized (untrained) network, which benchmarks use.
func NewRecPredictor(ds *datasets.RecDataset, hp NCFHParams, snap *Snapshot, negPerUser int, poolSeed uint64) (*RecPredictor, error) {
	if negPerUser <= 0 {
		negPerUser = RecPoolNegatives
	}
	// The network seed matches NewRecommendation's constructor split, so a
	// nil-snapshot predictor equals an epoch-0 training run.
	rng := tensor.NewRNG(poolSeed)
	net := NewNCF(ds.Users, ds.Items, hp.GMFDim, hp.MLPDim, rng.Split(1))
	p := &RecPredictor{Net: net, params: net.Params()}
	if snap != nil {
		if err := snap.Restore(p.params); err != nil {
			return nil, err
		}
		p.digest = snap.Digest()
	}
	poolRNG := tensor.NewRNG(poolSeed ^ 0x5E27E)
	users, candidates := ds.EvalLists(negPerUser, poolRNG)
	for i, u := range users {
		for _, it := range candidates[i] {
			p.users = append(p.users, u)
			p.items = append(p.items, it)
		}
	}
	if len(p.users) == 0 {
		return nil, fmt.Errorf("models: empty prediction sample pool")
	}
	return p, nil
}

// Samples returns the preloaded sample-pool size.
func (p *RecPredictor) Samples() int { return len(p.users) }

// SnapshotDigest returns the digest of the restored snapshot ("" when the
// predictor serves fresh parameters).
func (p *RecPredictor) SnapshotDigest() string { return p.digest }

// Params exposes the predictor's parameters (snapshot/digest plumbing).
func (p *RecPredictor) Params() []*autograd.Param { return p.params }

// NewContext returns a fresh per-worker inference context. Contexts may
// run concurrently with each other; a single context is not goroutine-safe.
func (p *RecPredictor) NewContext() *RecInferCtx {
	return &RecInferCtx{
		p:    p,
		tape: autograd.NewTape(),
		rng:  tensor.NewRNG(0), // eval-mode forward draws no randomness
	}
}

// RecInferCtx is one worker's inference context: a persistent tape plus
// batch staging buffers, reused across calls so a warm fixed-size
// InferBatch allocates nothing (the property BenchmarkServeSingleStream
// gates).
type RecInferCtx struct {
	p      *RecPredictor
	tape   *autograd.Tape
	rng    *tensor.RNG
	busers []int
	bitems []int
}

// InferBatch runs one forward-only pass over the given sample indices and
// writes one prediction (the interaction logit) per index into out.
// len(out) must be at least len(samples). Panics on an out-of-range
// sample index.
func (c *RecInferCtx) InferBatch(samples []int, out []float64) {
	c.busers = c.busers[:0]
	c.bitems = c.bitems[:0]
	for _, s := range samples {
		c.busers = append(c.busers, c.p.users[s])
		c.bitems = append(c.bitems, c.p.items[s])
	}
	c.tape.Reset()
	ctx := nn.NewCtx(c.tape, false, c.rng)
	logits := c.p.Net.Forward(ctx, c.busers, c.bitems)
	copy(out, logits.Value.Data[:len(samples)])
}
