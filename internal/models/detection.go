package models

import (
	"math"
	"sort"

	"repro/internal/datasets"
)

// Anchor is a reference box in image coordinates.
type Anchor struct {
	CX, CY, W, H float64
}

// Box returns the anchor as a corner-form box.
func (a Anchor) Box() datasets.Box {
	return datasets.Box{X1: a.CX - a.W/2, Y1: a.CY - a.H/2, X2: a.CX + a.W/2, Y2: a.CY + a.H/2}
}

// AnchorShape is one (width, height) anchor template.
type AnchorShape struct{ W, H float64 }

// DefaultAnchorShapes builds SSD-style templates: each scale at aspect
// ratios 1:1, 2:1, and 1:2.
func DefaultAnchorShapes(scales []float64) []AnchorShape {
	var out []AnchorShape
	for _, s := range scales {
		out = append(out,
			AnchorShape{W: s, H: s},
			AnchorShape{W: s * 1.4, H: s / 1.4},
			AnchorShape{W: s / 1.4, H: s * 1.4},
		)
	}
	return out
}

// GridAnchors places the anchor shapes at every cell center of a
// gridS×gridS feature map with the given stride, ordered raster-major then
// by shape — matching autograd.SpatialRows row ordering.
func GridAnchors(gridS, stride int, shapes []AnchorShape) []Anchor {
	var out []Anchor
	for y := 0; y < gridS; y++ {
		for x := 0; x < gridS; x++ {
			cx := float64(x)*float64(stride) + float64(stride)/2
			cy := float64(y)*float64(stride) + float64(stride)/2
			for _, sh := range shapes {
				out = append(out, Anchor{CX: cx, CY: cy, W: sh.W, H: sh.H})
			}
		}
	}
	return out
}

// EncodeBox computes regression targets (dx, dy, dw, dh) for a ground-truth
// box relative to an anchor, the standard SSD/Faster-R-CNN parameterization.
func EncodeBox(a Anchor, g datasets.Box) [4]float64 {
	gw := math.Max(g.X2-g.X1, 1e-6)
	gh := math.Max(g.Y2-g.Y1, 1e-6)
	gcx := (g.X1 + g.X2) / 2
	gcy := (g.Y1 + g.Y2) / 2
	return [4]float64{
		(gcx - a.CX) / a.W,
		(gcy - a.CY) / a.H,
		math.Log(gw / a.W),
		math.Log(gh / a.H),
	}
}

// DecodeBox inverts EncodeBox.
func DecodeBox(a Anchor, d [4]float64) datasets.Box {
	cx := a.CX + d[0]*a.W
	cy := a.CY + d[1]*a.H
	w := a.W * math.Exp(clampF(d[2], -4, 4))
	h := a.H * math.Exp(clampF(d[3], -4, 4))
	return datasets.Box{X1: cx - w/2, Y1: cy - h/2, X2: cx + w/2, Y2: cy + h/2}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MatchAnchors assigns each anchor a label: the matched GT index for
// positives, -2 for background, -1 for ignored (intermediate IoU). Every GT
// is force-matched to its best anchor so no object goes untrained.
func MatchAnchors(anchors []Anchor, gts []datasets.Box, posThresh, negThresh float64) []int {
	match := make([]int, len(anchors))
	for i := range match {
		match[i] = -2
	}
	bestForGT := make([]int, len(gts))
	bestIoUForGT := make([]float64, len(gts))
	for i := range bestForGT {
		bestForGT[i] = -1
	}
	for ai, a := range anchors {
		ab := a.Box()
		bestIoU, bestGT := 0.0, -1
		for gi, g := range gts {
			iou := datasets.IoU(ab, g)
			if iou > bestIoU {
				bestIoU, bestGT = iou, gi
			}
			if iou > bestIoUForGT[gi] {
				bestIoUForGT[gi], bestForGT[gi] = iou, ai
			}
		}
		switch {
		case bestIoU >= posThresh:
			match[ai] = bestGT
		case bestIoU >= negThresh:
			match[ai] = -1 // ignore band
		}
	}
	for gi, ai := range bestForGT {
		if ai >= 0 {
			match[ai] = gi
		}
	}
	return match
}

// ScoredBox is a decoded detection before/after NMS.
type ScoredBox struct {
	Box   datasets.Box
	Score float64
}

// NMS performs greedy non-maximum suppression at the given IoU threshold,
// keeping at most keep boxes. Input need not be sorted.
func NMS(boxes []ScoredBox, iouThresh float64, keep int) []ScoredBox {
	sorted := append([]ScoredBox(nil), boxes...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	var out []ScoredBox
	for _, b := range sorted {
		ok := true
		for _, k := range out {
			if datasets.IoU(b.Box, k.Box) >= iouThresh {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, b)
			if len(out) >= keep {
				break
			}
		}
	}
	return out
}
