package models

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/autograd"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/precision"
	"repro/internal/tensor"
)

// --- detection utility unit tests ---

func TestEncodeDecodeBoxInverse(t *testing.T) {
	a := Anchor{CX: 8, CY: 8, W: 6, H: 4}
	g := datasets.Box{X1: 5, Y1: 6, X2: 11, Y2: 12}
	d := EncodeBox(a, g)
	back := DecodeBox(a, d)
	if math.Abs(back.X1-g.X1) > 1e-9 || math.Abs(back.Y2-g.Y2) > 1e-9 {
		t.Fatalf("decode(encode) != identity: %+v vs %+v", back, g)
	}
}

func TestEncodeDecodeInverseProperty(t *testing.T) {
	rng := tensor.NewRNG(1)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		a := Anchor{CX: r.Uniform(2, 14), CY: r.Uniform(2, 14), W: r.Uniform(2, 8), H: r.Uniform(2, 8)}
		x1, y1 := r.Uniform(0, 10), r.Uniform(0, 10)
		g := datasets.Box{X1: x1, Y1: y1, X2: x1 + r.Uniform(1, 6), Y2: y1 + r.Uniform(1, 6)}
		back := DecodeBox(a, EncodeBox(a, g))
		return math.Abs(back.X1-g.X1) < 1e-6 && math.Abs(back.Y1-g.Y1) < 1e-6 &&
			math.Abs(back.X2-g.X2) < 1e-6 && math.Abs(back.Y2-g.Y2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGridAnchorsLayoutMatchesSpatialRows(t *testing.T) {
	shapes := []AnchorShape{{W: 4, H: 4}, {W: 6, H: 6}}
	anchors := GridAnchors(2, 8, shapes)
	if len(anchors) != 2*2*2 {
		t.Fatalf("anchor count %d", len(anchors))
	}
	// Raster order: (y0,x0,s0), (y0,x0,s1), (y0,x1,s0)...
	if anchors[0].CX != 4 || anchors[0].W != 4 {
		t.Fatalf("anchor 0: %+v", anchors[0])
	}
	if anchors[1].W != 6 {
		t.Fatal("second anchor should be the second shape at the same cell")
	}
	if anchors[2].CX != 12 || anchors[2].CY != 4 {
		t.Fatalf("anchor 2 should advance x: %+v", anchors[2])
	}
}

func TestMatchAnchorsForcedMatch(t *testing.T) {
	// A GT box too small to reach the positive threshold must still be
	// matched to its best anchor.
	anchors := GridAnchors(2, 8, []AnchorShape{{W: 8, H: 8}})
	gt := []datasets.Box{{X1: 0, Y1: 0, X2: 2, Y2: 2, Class: 1}}
	match := MatchAnchors(anchors, gt, 0.5, 0.4)
	found := false
	for _, m := range match {
		if m == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("best anchor must be force-matched to the GT")
	}
}

func TestNMSSuppressesOverlaps(t *testing.T) {
	boxes := []ScoredBox{
		{Box: datasets.Box{X1: 0, Y1: 0, X2: 4, Y2: 4}, Score: 0.9},
		{Box: datasets.Box{X1: 0.5, Y1: 0.5, X2: 4.5, Y2: 4.5}, Score: 0.8}, // heavy overlap
		{Box: datasets.Box{X1: 10, Y1: 10, X2: 14, Y2: 14}, Score: 0.7},
	}
	kept := NMS(boxes, 0.5, 10)
	if len(kept) != 2 {
		t.Fatalf("NMS kept %d, want 2", len(kept))
	}
	if kept[0].Score != 0.9 || kept[1].Score != 0.7 {
		t.Fatalf("NMS order: %+v", kept)
	}
}

// Property: NMS output is sorted by score, within the keep bound, and no
// two survivors overlap above the threshold.
func TestNMSInvariantsProperty(t *testing.T) {
	rng := tensor.NewRNG(2)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		n := 1 + r.Intn(20)
		boxes := make([]ScoredBox, n)
		for i := range boxes {
			x1, y1 := r.Uniform(0, 12), r.Uniform(0, 12)
			boxes[i] = ScoredBox{
				Box:   datasets.Box{X1: x1, Y1: y1, X2: x1 + r.Uniform(1, 5), Y2: y1 + r.Uniform(1, 5)},
				Score: r.Float64(),
			}
		}
		keep := 1 + r.Intn(8)
		out := NMS(boxes, 0.4, keep)
		if len(out) > keep {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].Score > out[i-1].Score {
				return false
			}
		}
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if datasets.IoU(out[i].Box, out[j].Box) >= 0.4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// --- MiniGo helper unit tests ---

func TestSymIndexBijectionProperty(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw % 8)
		seen := map[int]bool{}
		for p := 0; p < 25; p++ {
			q := symIndex(p, 5, k)
			if q < 0 || q >= 25 || seen[q] {
				return false
			}
			seen[q] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentExamplePreservesMass(t *testing.T) {
	rng := tensor.NewRNG(3)
	feats := make([]float64, 3*25)
	policy := make([]float64, 26)
	for i := range feats {
		feats[i] = rng.Float64()
	}
	sum := 0.0
	for i := range policy {
		policy[i] = rng.Float64()
		sum += policy[i]
	}
	for k := 0; k < 8; k++ {
		f2, p2 := augmentExample(feats, policy, 5, k)
		s2 := 0.0
		for _, v := range p2 {
			s2 += v
		}
		if math.Abs(s2-sum) > 1e-9 {
			t.Fatalf("sym %d changed policy mass", k)
		}
		if p2[25] != policy[25] {
			t.Fatalf("sym %d moved the pass slot", k)
		}
		fs, f2s := 0.0, 0.0
		for i := range feats {
			fs += feats[i]
			f2s += f2[i]
		}
		if math.Abs(fs-f2s) > 1e-9 {
			t.Fatalf("sym %d changed feature mass", k)
		}
	}
}

func TestMaskTargetGrid(t *testing.T) {
	gt := tensor.New(8, 8)
	for y := 2; y < 6; y++ {
		for x := 2; x < 6; x++ {
			gt.Set(1, y, x)
		}
	}
	// Proposal exactly over the filled square: target all ones.
	tgt := maskTargetGrid(gt, datasets.Box{X1: 2, Y1: 2, X2: 6, Y2: 6}, 4)
	for _, v := range tgt {
		if v != 1 {
			t.Fatalf("full-cover mask target: %v", tgt)
		}
	}
	// Proposal over empty area: all zeros.
	tgt0 := maskTargetGrid(gt, datasets.Box{X1: 0, Y1: 0, X2: 2, Y2: 2}, 4)
	for _, v := range tgt0 {
		if v != 0 {
			t.Fatalf("empty mask target: %v", tgt0)
		}
	}
}

// --- workload integration tests (short budgets: quality must improve) ---
//
// The full-budget variants train long enough to make convergence claims
// (~45s for the package). Under -short every training loop shrinks to a
// couple of epochs with correspondingly weaker assertions — the wiring is
// still exercised end to end, but the slow convergence claims are checked
// only in full runs.

func TestImageClassificationLearns(t *testing.T) {
	epochs, margin := 4, 0.05
	if testing.Short() {
		epochs, margin = 2, 0.0
	}
	ds := datasets.GenerateImages(datasets.DefaultImageConfig())
	w := NewImageClassification(ds, DefaultImageHParams(), 42)
	before := w.Evaluate()
	var lastLoss float64
	for e := 0; e < epochs; e++ {
		lastLoss = w.TrainEpoch()
	}
	after := w.Evaluate()
	if after <= before+margin {
		t.Fatalf("accuracy should improve: %.3f -> %.3f", before, after)
	}
	if lastLoss > 2.0 {
		t.Fatalf("loss should fall below chance level: %v", lastLoss)
	}
	if w.Epoch() != epochs {
		t.Fatal("epoch accounting")
	}
}

func TestRecommendationConvergesToTarget(t *testing.T) {
	ds := datasets.GenerateRec(datasets.DefaultRecConfig())
	w := NewRecommendation(ds, DefaultNCFHParams(), 42)
	reached := false
	for e := 0; e < 25 && !reached; e++ {
		w.TrainEpoch()
		if w.Evaluate() >= 0.635 {
			reached = true
		}
	}
	if !reached {
		t.Fatal("NCF must reach the 0.635 HR@10 target within 25 epochs")
	}
}

// shortMTConfig is a quarter-size corpus: big enough for the training loss
// to fall epoch over epoch, small enough that a -short epoch is ~0.25s.
func shortMTConfig() datasets.MTConfig {
	cfg := datasets.DefaultMTConfig()
	cfg.TrainN, cfg.ValN = 192, 32
	return cfg
}

func TestTransformerLearnsTransduction(t *testing.T) {
	if testing.Short() {
		ds := datasets.GenerateMT(shortMTConfig())
		w := NewTranslation(ds, DefaultTransformerHParams(), 42)
		l0 := w.TrainEpoch()
		l1 := w.TrainEpoch()
		if l1 >= l0 {
			t.Fatalf("transformer loss should fall: %v -> %v", l0, l1)
		}
		return
	}
	ds := datasets.GenerateMT(datasets.DefaultMTConfig())
	w := NewTranslation(ds, DefaultTransformerHParams(), 42)
	for e := 0; e < 5; e++ {
		w.TrainEpoch()
	}
	if bleu := w.Evaluate(); bleu < 10 {
		t.Fatalf("transformer BLEU after 5 epochs: %v", bleu)
	}
}

func TestGNMTLearnsTransduction(t *testing.T) {
	if testing.Short() {
		ds := datasets.GenerateMT(shortMTConfig())
		w := NewRNNTranslation(ds, DefaultGNMTHParams(), 42)
		l0 := w.TrainEpoch()
		l1 := w.TrainEpoch()
		if l1 >= l0 {
			t.Fatalf("GNMT loss should fall: %v -> %v", l0, l1)
		}
		return
	}
	ds := datasets.GenerateMT(datasets.DefaultMTConfig())
	w := NewRNNTranslation(ds, DefaultGNMTHParams(), 42)
	for e := 0; e < 5; e++ {
		w.TrainEpoch()
	}
	if bleu := w.Evaluate(); bleu < 10 {
		t.Fatalf("GNMT BLEU after 5 epochs: %v", bleu)
	}
}

func TestSSDLearns(t *testing.T) {
	epochs, shrink := 8, 2.0
	if testing.Short() {
		epochs, shrink = 2, 1.0 // loss must at least fall
	}
	ds := datasets.GenerateDetection(datasets.DefaultDetConfig())
	w := NewObjectDetection(ds, DefaultDetHParams(), 42)
	var loss0, lossN float64
	for e := 0; e < epochs; e++ {
		l := w.TrainEpoch()
		if e == 0 {
			loss0 = l
		}
		lossN = l
	}
	if lossN >= loss0/shrink {
		t.Fatalf("detection loss should shrink %.0fx: %v -> %v", shrink, loss0, lossN)
	}
	if ap := w.Evaluate(); ap < 0 || ap > 1 {
		t.Fatalf("mAP out of range: %v", ap)
	}
}

func TestMaskRCNNReachesBothTargets(t *testing.T) {
	ds := datasets.GenerateDetection(datasets.DefaultDetConfig())
	w := NewInstanceSegmentation(ds, DefaultMaskHParams(), 42)
	if testing.Short() {
		l0 := w.TrainEpoch()
		l1 := w.TrainEpoch()
		if l1 >= l0 {
			t.Fatalf("Mask R-CNN loss should fall: %v -> %v", l0, l1)
		}
		return
	}
	reached := false
	for e := 0; e < 20 && !reached; e++ {
		w.TrainEpoch()
		if w.Evaluate() >= 1.0 {
			reached = true
		}
	}
	if !reached {
		t.Fatal("Mask R-CNN must meet both box and mask AP targets within 20 epochs")
	}
	if w.BoxAP() < w.BoxTarget || w.MaskAP() < w.MaskTarget {
		t.Fatal("gating metric inconsistent with individual APs")
	}
}

func TestMiniGoImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("MiniGo self-play needs ~12 epochs (~19s) to show reliable improvement (§2.2.3 variance)")
	}
	w := NewReinforcementLearning(DefaultMiniGoHParams(), 42)
	if len(w.evalFeats) == 0 {
		t.Fatal("oracle reference positions missing")
	}
	before := w.Evaluate()
	for e := 0; e < 12; e++ {
		w.TrainEpoch()
	}
	after := w.Evaluate()
	if after <= before {
		t.Fatalf("move match should improve: %.3f -> %.3f", before, after)
	}
}

func TestWorkloadSeedsDiverge(t *testing.T) {
	ds := datasets.GenerateRec(datasets.DefaultRecConfig())
	a := NewRecommendation(ds, DefaultNCFHParams(), 1)
	b := NewRecommendation(ds, DefaultNCFHParams(), 2)
	a.TrainEpoch()
	b.TrainEpoch()
	if a.Evaluate() == b.Evaluate() {
		t.Log("note: different seeds coincided this epoch (possible but unlikely)")
	}
	// Same seed must reproduce exactly (the replicability goal).
	c := NewRecommendation(ds, DefaultNCFHParams(), 1)
	c.TrainEpoch()
	if a.Evaluate() != c.Evaluate() {
		t.Fatal("same seed must reproduce the same quality exactly")
	}
}

func TestPrecisionPolicyDegradesTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("Figure-1 comparison needs 4 epochs of two models (~3.5s)")
	}
	ds := datasets.GenerateImages(datasets.DefaultImageConfig())
	full := NewImageClassification(ds, DefaultImageHParams(), 7)
	hpT := DefaultImageHParams()
	hpT.Precision = ternaryPolicy()
	tern := NewImageClassification(ds, hpT, 7)
	for e := 0; e < 4; e++ {
		full.TrainEpoch()
		tern.TrainEpoch()
	}
	if tern.Evaluate() >= full.Evaluate() {
		t.Fatalf("ternary weights should underperform fp64 (fig 1): %v vs %v",
			tern.Evaluate(), full.Evaluate())
	}
}

// ternaryPolicy avoids importing precision's constants at every call site.
func ternaryPolicy() precision.Policy {
	return precision.WeightsOnly(precision.Ternary)
}

func TestMiniGoPredictOneMatchesBatchEval(t *testing.T) {
	w := NewReinforcementLearning(DefaultMiniGoHParams(), 11)
	// The batch/single consistency property holds for any weights; the
	// self-play epoch (~1.6s) just makes them non-trivial, so skip it
	// under -short.
	if !testing.Short() {
		w.TrainEpoch()
	}
	s := w.HP.BoardSize
	// Batch evaluation and single-position prediction must agree.
	b := len(w.evalFeats)
	x := tensor.New(b, 3, s, s)
	for i, f := range w.evalFeats {
		copy(x.Data[i*3*s*s:(i+1)*3*s*s], f)
	}
	tape := autograd.NewTape()
	ctx := nn.NewCtx(tape, false, tensor.NewRNG(1))
	policy, _ := w.Net.Forward(ctx, autograd.Const(x))
	batchPred := policy.Value.ArgMaxRows()
	for i := 0; i < 5; i++ {
		if got := w.predictOne(tensorFrom(w.evalFeats[i], s)); got != batchPred[i] {
			// Batch statistics do not affect eval mode, so these must match.
			t.Fatalf("position %d: single %d vs batch %d", i, got, batchPred[i])
		}
	}
}
