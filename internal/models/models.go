// Package models implements the seven MLPerf Training v0.5 benchmark
// models of Table 1, scaled to laptop size but structurally faithful:
// ResNet-v1.5-style image classifier, SSD-style one-stage detector,
// Mask R-CNN-style two-stage detector/segmenter, GNMT-style recurrent
// translator, Transformer translator, NCF recommender, and the MiniGo
// self-play reinforcement-learning agent. Each implements Workload, the
// interface the measurement harness (internal/core) drives.
package models

import (
	"repro/internal/autograd"
	"repro/internal/opt"
	"repro/internal/precision"
)

// Workload is one benchmark instance bound to its dataset, seed, and
// hyperparameters. The harness repeatedly calls TrainEpoch and Evaluate
// until the quality threshold is reached (time-to-train, §3.2).
type Workload interface {
	// Name returns the benchmark area name (Table 1 row).
	Name() string
	// TrainEpoch runs one pass over the training data, returning the mean
	// training loss (for logging).
	TrainEpoch() float64
	// Evaluate computes the benchmark's quality metric on validation data.
	Evaluate() float64
	// Epoch returns the number of completed training epochs.
	Epoch() int
}

// StepCounter is implemented by workloads that expose their global step
// count (used for per-step schedules and cost accounting).
type StepCounter interface {
	Steps() int
}

// applySchedule updates an optimizer from a schedule at the given step;
// a nil schedule leaves the rate unchanged.
func applySchedule(o opt.Optimizer, s opt.Schedule, step int) {
	opt.ApplySchedule(o, s, step)
}

// trainStep factors the common tape lifecycle: zero grads, run forward to
// a loss, backprop, run postBackward (gradient clipping/quantization; may
// be nil), optimizer step. It returns the loss value. A non-nil tape is
// Reset and reused — workloads that train many steps keep one persistent
// tape so the steady-state step recycles every graph buffer; passing nil
// builds a throwaway tape.
func trainStep(tape *autograd.Tape, params []*autograd.Param, o opt.Optimizer, forward func(tape *autograd.Tape) *autograd.Var, postBackward func()) float64 {
	for _, p := range params {
		p.ZeroGrad()
	}
	if tape == nil {
		tape = autograd.NewTape()
	} else {
		tape.Reset()
	}
	loss := forward(tape)
	tape.Backward(loss)
	if postBackward != nil {
		postBackward()
	}
	o.Step()
	return loss.Scalar()
}

// trainStepMP is trainStep under a mixed-precision trainer: the step is
// bracketed by mp.BeginStep (bf16 master-weight round) and mp.Apply
// (restore masters, overflow check, unscaled optimizer step), and the
// backward pass is seeded with the dynamic loss scale. A nil mp delegates
// to trainStep, so regime-agnostic workloads call this unconditionally.
func trainStepMP(tape *autograd.Tape, params []*autograd.Param, o opt.Optimizer, mp *precision.MP, forward func(tape *autograd.Tape) *autograd.Var, postBackward func()) float64 {
	if mp == nil {
		return trainStep(tape, params, o, forward, postBackward)
	}
	for _, p := range params {
		p.ZeroGrad()
	}
	if tape == nil {
		tape = autograd.NewTape()
	} else {
		tape.Reset()
	}
	mp.BeginStep()
	loss := forward(tape)
	tape.BackwardScaled(loss, mp.Scale())
	if postBackward != nil {
		postBackward()
	}
	mp.Apply(o)
	return loss.Scalar()
}
