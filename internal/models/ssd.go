package models

import (
	"math"
	"sort"

	"repro/internal/autograd"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// detBackbone is the shared convolutional trunk of the detection models:
// ResNet-34-style basic blocks (two 3×3 convs per block — the "different
// residual-block structure compared to ResNet-50" §3.1.2 notes) reducing a
// [B,3,S,S] image to a stride-4 feature map.
type detBackbone struct {
	stem   *nn.Conv2d
	stemBN *nn.BatchNorm2d
	b1, b2 *residualBlock
	OutC   int
	Stride int
}

func newDetBackbone(width int, rng *tensor.RNG) *detBackbone {
	return &detBackbone{
		stem:   nn.NewConv2d("bb.stem", 3, width, 3, 1, 1, false, rng),
		stemBN: nn.NewBatchNorm2d("bb.stembn", width),
		b1:     newResidualBlock("bb.b1", width, 2*width, 2, rng),
		b2:     newResidualBlock("bb.b2", 2*width, 2*width, 1, rng),
		OutC:   2 * width,
		Stride: 2,
	}
}

func (b *detBackbone) forward(ctx *nn.Ctx, x *autograd.Var) *autograd.Var {
	h := autograd.ReLU(b.stemBN.Forward(ctx, b.stem.Forward(ctx, x)))
	return b.b2.forward(ctx, b.b1.forward(ctx, h))
}

func (b *detBackbone) Params() []*autograd.Param {
	ps := nn.CollectParams(b.stem, b.stemBN)
	ps = append(ps, b.b1.Params()...)
	return append(ps, b.b2.Params()...)
}

// SSD is the light-weight one-stage object detector of §3.1.2: a ResNet-34
// style backbone with convolutional classification and box-regression heads
// over a grid of default boxes (anchors), trained with hard-negative-mined
// cross-entropy plus Smooth-L1, evaluated by COCO-style mAP.
type SSD struct {
	Backbone *detBackbone
	ClsHead  *nn.Conv2d
	RegHead  *nn.Conv2d
	Anchors  []Anchor
	Classes  int // object classes; background is class 0 in logits
	GridS    int
}

// NewSSD builds the detector for S×S images with the given object classes.
func NewSSD(imageS, classes, width int, rng *tensor.RNG) *SSD {
	bb := newDetBackbone(width, rng)
	gridS := imageS / bb.Stride
	shapes := DefaultAnchorShapes([]float64{float64(imageS) * 0.3, float64(imageS) * 0.5})
	s := &SSD{
		Backbone: bb,
		ClsHead:  nn.NewConv2d("ssd.cls", bb.OutC, len(shapes)*(classes+1), 3, 1, 1, true, rng),
		RegHead:  nn.NewConv2d("ssd.reg", bb.OutC, len(shapes)*4, 3, 1, 1, true, rng),
		Anchors:  GridAnchors(gridS, bb.Stride, shapes),
		Classes:  classes,
		GridS:    gridS,
	}
	return s
}

// Forward returns per-anchor class logits [B*A, classes+1] and box
// regressions [B*A, 4], with anchors ordered as in GridAnchors per image.
func (s *SSD) Forward(ctx *nn.Ctx, x *autograd.Var) (cls, reg *autograd.Var) {
	f := s.Backbone.forward(ctx, x)
	cls = autograd.SpatialRows(s.ClsHead.Forward(ctx, f), s.Classes+1)
	reg = autograd.SpatialRows(s.RegHead.Forward(ctx, f), 4)
	return cls, reg
}

// Params implements nn.Module.
func (s *SSD) Params() []*autograd.Param {
	return append(s.Backbone.Params(), nn.CollectParams(s.ClsHead, s.RegHead)...)
}

// DetHParams are the tunables of the detection benchmarks.
type DetHParams struct {
	Batch       int
	LR          float64
	Momentum    float64
	WeightDecay float64
	Width       int
	// NegPosRatio is the hard-negative mining ratio (3:1 in SSD).
	NegPosRatio int
	// ScoreThresh and NMSIoU control inference-time decoding.
	ScoreThresh float64
	NMSIoU      float64
}

// DefaultDetHParams is the reference configuration.
func DefaultDetHParams() DetHParams {
	return DetHParams{Batch: 16, LR: 0.02, Momentum: 0.9, WeightDecay: 5e-4,
		Width: 6, NegPosRatio: 3, ScoreThresh: 0.25, NMSIoU: 0.3}
}

// ObjectDetection is the SSD workload over the synthetic COCO stand-in.
type ObjectDetection struct {
	HP  DetHParams
	DS  *datasets.DetDataset
	Net *SSD
	Opt opt.Optimizer

	params       []*autograd.Param
	loader       *data.Loader
	rng          *tensor.RNG
	epoch, steps int
}

// NewObjectDetection builds the workload.
func NewObjectDetection(ds *datasets.DetDataset, hp DetHParams, seed uint64) *ObjectDetection {
	rng := tensor.NewRNG(seed)
	net := NewSSD(ds.Cfg.Size, ds.Cfg.Classes, hp.Width, rng.Split(1))
	params := net.Params()
	return &ObjectDetection{
		HP: hp, DS: ds, Net: net,
		Opt:    opt.NewSGD(params, hp.LR, hp.Momentum, hp.WeightDecay, opt.TorchStyle),
		params: params,
		loader: data.NewLoader(len(ds.Train), hp.Batch, rng.Split(2)),
		rng:    rng.Split(3),
	}
}

// Name implements Workload.
func (w *ObjectDetection) Name() string { return "object_detection_ssd" }

// Epoch implements Workload.
func (w *ObjectDetection) Epoch() int { return w.epoch }

// Steps implements StepCounter.
func (w *ObjectDetection) Steps() int { return w.steps }

// buildTargets computes per-anchor labels (class id, 0 = background,
// -1 = ignore) and regression targets for one batch, with hard-negative
// mining applied using the current background probabilities.
func (w *ObjectDetection) buildTargets(idx []int, clsVal *tensor.Tensor) (labels []int, regTargets []float64, posRows []int) {
	a := len(w.Net.Anchors)
	c1 := w.Net.Classes + 1
	labels = make([]int, len(idx)*a)
	regTargets = make([]float64, 0, len(idx)*4)
	type negCand struct {
		row  int
		loss float64
	}
	for bi, id := range idx {
		ex := w.DS.Train[id]
		gtBoxes := make([]datasets.Box, len(ex.Boxes))
		copy(gtBoxes, ex.Boxes)
		match := MatchAnchors(w.Net.Anchors, gtBoxes, 0.45, 0.35)
		var negs []negCand
		pos := 0
		for ai, m := range match {
			row := bi*a + ai
			switch {
			case m >= 0:
				labels[row] = gtBoxes[m].Class
				posRows = append(posRows, row)
				t := EncodeBox(w.Net.Anchors[ai], gtBoxes[m])
				regTargets = append(regTargets, t[0], t[1], t[2], t[3])
				pos++
			case m == -1:
				labels[row] = autograd.IgnoreLabel
			default:
				// Background candidate: mining loss is -log p(bg).
				rowData := clsVal.Data[row*c1 : (row+1)*c1]
				negs = append(negs, negCand{row: row, loss: -logSoftmaxAt(rowData, 0)})
			}
		}
		// Hard negative mining: keep the NegPosRatio×pos hardest negatives,
		// ignore the rest (SSD's 3:1 rule).
		sort.Slice(negs, func(i, j int) bool { return negs[i].loss > negs[j].loss })
		limit := w.HP.NegPosRatio * pos
		if limit < 1 {
			limit = 1
		}
		for ni, nc := range negs {
			if ni < limit {
				labels[nc.row] = 0
			} else {
				labels[nc.row] = autograd.IgnoreLabel
			}
		}
	}
	return labels, regTargets, posRows
}

// logSoftmaxAt returns log softmax(row)[j] computed stably.
func logSoftmaxAt(row []float64, j int) float64 {
	mx := row[0]
	for _, v := range row[1:] {
		if v > mx {
			mx = v
		}
	}
	s := 0.0
	for _, v := range row {
		s += math.Exp(v - mx)
	}
	return row[j] - mx - math.Log(s)
}

// TrainEpoch implements Workload.
func (w *ObjectDetection) TrainEpoch() float64 {
	totalLoss, n := 0.0, 0
	for i := 0; i < w.loader.StepsPerEpoch(); i++ {
		idx, _ := w.loader.Next()
		x := datasets.BatchImages(w.DS.Train, idx)
		loss := trainStep(nil, w.params, w.Opt, func(tape *autograd.Tape) *autograd.Var {
			ctx := nn.NewCtx(tape, true, w.rng)
			cls, reg := w.Net.Forward(ctx, autograd.Const(x))
			labels, regTargets, posRows := w.buildTargets(idx, cls.Value)
			clsLoss := autograd.SoftmaxCrossEntropy(cls, labels)
			if len(posRows) == 0 {
				return clsLoss
			}
			posReg := autograd.GatherRows(reg, posRows)
			regLoss := autograd.SmoothL1(posReg, tensor.FromSlice(regTargets, len(posRows), 4))
			return autograd.Add(clsLoss, autograd.Scale(regLoss, 2))
		}, nil)
		totalLoss += loss
		n++
		w.steps++
	}
	w.epoch++
	return totalLoss / float64(n)
}

// Detect runs inference on one validation image index, returning NMS-ed
// detections per class.
func (w *ObjectDetection) Detect(exs []datasets.DetExample, id int) []metrics.Detection {
	x := datasets.BatchImages(exs, []int{id})
	tape := autograd.NewTape()
	ctx := nn.NewCtx(tape, false, w.rng)
	cls, reg := w.Net.Forward(ctx, autograd.Const(x))
	c1 := w.Net.Classes + 1
	var out []metrics.Detection
	for cInd := 1; cInd < c1; cInd++ {
		var cand []ScoredBox
		for ai, anchor := range w.Net.Anchors {
			row := cls.Value.Data[ai*c1 : (ai+1)*c1]
			score := math.Exp(logSoftmaxAt(row, cInd))
			if score < w.HP.ScoreThresh {
				continue
			}
			var d [4]float64
			copy(d[:], reg.Value.Data[ai*4:(ai+1)*4])
			cand = append(cand, ScoredBox{Box: DecodeBox(anchor, d), Score: score})
		}
		for _, sb := range NMS(cand, w.HP.NMSIoU, 5) {
			b := sb.Box
			b.Class = cInd
			out = append(out, metrics.Detection{ImageID: id, Box: b, Score: sb.Score})
		}
	}
	return out
}

// Evaluate implements Workload: box mAP at IoU 0.5 over the validation set.
// The paper's COCO target of 21.2 mAP carries over numerically (threshold
// 0.212); we evaluate at IoU 0.5 because at 16×16 synthetic resolution the
// 0.5:0.95 IoU sweep is quantization-bound rather than learning-bound (see
// EXPERIMENTS.md).
func (w *ObjectDetection) Evaluate() float64 {
	var dets []metrics.Detection
	var gts []metrics.GroundTruth
	for id, ex := range w.DS.Val {
		dets = append(dets, w.Detect(w.DS.Val, id)...)
		for _, b := range ex.Boxes {
			gts = append(gts, metrics.GroundTruth{ImageID: id, Box: b})
		}
	}
	return metrics.MeanAP50(dets, gts)
}

// EvaluateCOCO returns the full COCO-style mAP (IoU 0.5:0.05:0.95), kept
// for reporting alongside the gating metric.
func (w *ObjectDetection) EvaluateCOCO() float64 {
	var dets []metrics.Detection
	var gts []metrics.GroundTruth
	for id, ex := range w.DS.Val {
		dets = append(dets, w.Detect(w.DS.Val, id)...)
		for _, b := range ex.Boxes {
			gts = append(gts, metrics.GroundTruth{ImageID: id, Box: b})
		}
	}
	return metrics.MeanAP(dets, gts, false)
}
