package models

import (
	"repro/internal/autograd"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/precision"
	"repro/internal/tensor"
)

// residualBlock is a ResNet v1.5 basic block: conv-BN-ReLU-conv-BN, with
// the skip added after the second BatchNorm ("addition after batch
// normalization") and downsampling performed by the stride of the 3×3
// convolution rather than a 1×1 in the main path — the v1.5 details the
// paper fixes to make system comparisons meaningful (§3.1.1).
type residualBlock struct {
	conv1, conv2 *nn.Conv2d
	bn1, bn2     *nn.BatchNorm2d
	// down projects the skip connection when shape changes; nil for
	// identity skips (the first residual block of each network has no
	// 1×1 in its skip, per the v1.5 definition).
	down   *nn.Conv2d
	downBN *nn.BatchNorm2d
}

func newResidualBlock(name string, inC, outC, stride int, rng *tensor.RNG) *residualBlock {
	b := &residualBlock{
		conv1: nn.NewConv2d(name+".conv1", inC, outC, 3, stride, 1, false, rng),
		bn1:   nn.NewBatchNorm2d(name+".bn1", outC),
		conv2: nn.NewConv2d(name+".conv2", outC, outC, 3, 1, 1, false, rng),
		bn2:   nn.NewBatchNorm2d(name+".bn2", outC),
	}
	if stride != 1 || inC != outC {
		b.down = nn.NewConv2d(name+".down", inC, outC, 1, stride, 0, false, rng)
		b.downBN = nn.NewBatchNorm2d(name+".downbn", outC)
	}
	return b
}

func (b *residualBlock) forward(ctx *nn.Ctx, x *autograd.Var) *autograd.Var {
	h := autograd.ReLU(b.bn1.Forward(ctx, b.conv1.Forward(ctx, x)))
	h = b.bn2.Forward(ctx, b.conv2.Forward(ctx, h))
	skip := x
	if b.down != nil {
		skip = b.downBN.Forward(ctx, b.down.Forward(ctx, skip))
	}
	return autograd.ReLU(autograd.Add(h, skip))
}

func (b *residualBlock) Params() []*autograd.Param {
	ps := nn.CollectParams(b.conv1, b.bn1, b.conv2, b.bn2)
	if b.down != nil {
		ps = append(ps, nn.CollectParams(b.down, b.downBN)...)
	}
	return ps
}

// ResNet is the scaled-down ResNet-v1.5 classifier: a 3×3 stem followed by
// two stages of basic blocks and a linear classifier head.
type ResNet struct {
	stem   *nn.Conv2d
	stemBN *nn.BatchNorm2d
	blocks []*residualBlock
	fc     *nn.Linear
}

// NewResNet builds the classifier for inC-channel images and the given
// class count. width is the stem channel count (stage 2 doubles it).
func NewResNet(inC, classes, width int, rng *tensor.RNG) *ResNet {
	r := &ResNet{
		stem:   nn.NewConv2d("stem", inC, width, 3, 1, 1, false, rng),
		stemBN: nn.NewBatchNorm2d("stembn", width),
	}
	// Stage 1: identity blocks at stem width (first block: no 1×1 skip).
	r.blocks = append(r.blocks, newResidualBlock("s1b1", width, width, 1, rng))
	// Stage 2: downsampling block then an identity block at 2× width.
	r.blocks = append(r.blocks, newResidualBlock("s2b1", width, 2*width, 2, rng))
	r.blocks = append(r.blocks, newResidualBlock("s2b2", 2*width, 2*width, 1, rng))
	r.fc = nn.NewLinearXavier("fc", 2*width, classes, true, rng)
	return r
}

// Forward produces class logits [N, classes] for x [N,C,H,W].
func (r *ResNet) Forward(ctx *nn.Ctx, x *autograd.Var) *autograd.Var {
	h := autograd.ReLU(r.stemBN.Forward(ctx, r.stem.Forward(ctx, x)))
	for _, b := range r.blocks {
		h = b.forward(ctx, h)
	}
	return r.fc.Forward(ctx, autograd.GlobalAvgPool2D(h))
}

// Params implements nn.Module.
func (r *ResNet) Params() []*autograd.Param {
	ps := nn.CollectParams(r.stem, r.stemBN)
	for _, b := range r.blocks {
		ps = append(ps, b.Params()...)
	}
	return append(ps, r.fc.Params()...)
}

// ImageHParams are the tunable hyperparameters of the image-classification
// benchmark. MLPerf rules allow adjusting the batch size (and coupling the
// learning rate to it via the linear scaling rule) but fix the topology.
type ImageHParams struct {
	Batch       int
	BaseLR      float64 // learning rate at reference batch RefBatch
	RefBatch    int
	Momentum    float64
	WeightDecay float64
	Width       int
	// UseLARS selects the LARS optimizer (admitted in v0.6 for large
	// batches); otherwise SGD with momentum is used.
	UseLARS bool
	// MomentumStyle picks between the §2.2.4 formulations.
	MomentumStyle opt.MomentumStyle
	// WarmupEpochs ramps the learning rate linearly (large-batch rule).
	WarmupEpochs int
	// DecayEpoch steps the learning rate down by DecayFactor (the
	// reference ResNet schedule; 0 disables).
	DecayEpoch  int
	DecayFactor float64
	// Precision quantizes weights/gradients each step (Figure 1 study).
	Precision precision.Policy
	// Numerics selects the training compute regime (§2.2.3); zero value
	// is the float64 reference. Orthogonal to Precision: Precision
	// simulates weight storage formats post-hoc, Numerics changes what
	// the compute itself runs in. Evaluation always runs in float64, and
	// convolutions stay float64 in every regime (the AMP-style selective
	// op list: only the MatMul-class ops reduce).
	Numerics precision.Numerics
	// Augment enables the random flip/crop/jitter pipeline.
	Augment bool
}

// DefaultImageHParams is the reference configuration.
func DefaultImageHParams() ImageHParams {
	return ImageHParams{
		Batch: 32, BaseLR: 0.08, RefBatch: 32, Momentum: 0.9,
		WeightDecay: 1e-4, Width: 6, WarmupEpochs: 0,
		DecayEpoch: 8, DecayFactor: 0.2,
		Precision: precision.FullPrecision(), Augment: true,
	}
}

// ImageClassification is the ResNet workload over the synthetic ImageNet
// stand-in.
type ImageClassification struct {
	HP    ImageHParams
	DS    *datasets.ImageDataset
	Net   *ResNet
	Opt   opt.Optimizer
	Sched opt.Schedule

	params  []*autograd.Param
	loader  *data.Loader
	augment *datasets.Augment
	rng     *tensor.RNG
	epoch   int
	steps   int

	// Steady-state reuse: one persistent tape plus batch/augmentation
	// buffers, so warm training steps allocate nothing.
	tape    *autograd.Tape
	ctx     nn.Ctx
	mbAug   *datasets.Augment
	bx      *tensor.Tensor
	blabels []int

	mp *precision.MP // mixed-precision trainer; nil in non-mixed regimes
}

// imageOptimizer builds the benchmark optimizer for a parameter list.
// Factored out so staged (pipeline-parallel) training can give each stage
// an optimizer with hyperparameters identical to the serial one — the
// optimizers are elementwise, so per-stage instances over disjoint
// parameter shards update exactly as one instance over all parameters.
func imageOptimizer(hp ImageHParams, params []*autograd.Param) opt.Optimizer {
	lr := opt.LinearScaled(hp.BaseLR, hp.Batch, hp.RefBatch)
	if hp.UseLARS {
		return opt.NewLARS(params, lr, hp.Momentum, hp.WeightDecay, 0.02)
	}
	return opt.NewSGD(params, lr, hp.Momentum, hp.WeightDecay, hp.MomentumStyle)
}

// NewImageClassification builds the workload from a dataset, hyperparams,
// and a run seed (weight init, shuffling, and augmentation all derive from
// it — the §2.2.3 stochasticity sources).
func NewImageClassification(ds *datasets.ImageDataset, hp ImageHParams, seed uint64) *ImageClassification {
	rng := tensor.NewRNG(seed)
	net := NewResNet(ds.Cfg.Channels, ds.Cfg.Classes, hp.Width, rng.Split(1))
	params := net.Params()
	lr := opt.LinearScaled(hp.BaseLR, hp.Batch, hp.RefBatch)
	o := imageOptimizer(hp, params)
	w := &ImageClassification{
		HP: hp, DS: ds, Net: net, Opt: o,
		params: params,
		loader: data.NewLoader(ds.Cfg.TrainN, hp.Batch, rng.Split(2)),
		rng:    rng.Split(3),
		tape:   autograd.NewTape(),
		mp:     hp.Numerics.NewTrainer(params),
	}
	w.tape.SetDType(hp.Numerics.Compute)
	if hp.Augment {
		w.augment = &datasets.Augment{Flip: true, CropPad: 1, Jitter: 0.1, RNG: rng.Split(4)}
	}
	stepsPerEpoch := w.loader.StepsPerEpoch()
	var inner opt.Schedule = opt.Constant(lr)
	if hp.DecayEpoch > 0 && hp.DecayFactor > 0 {
		inner = opt.Step{Base: lr, Boundaries: []int{hp.DecayEpoch * stepsPerEpoch}, Factor: hp.DecayFactor}
	}
	w.Sched = opt.Warmup{Inner: inner, WarmupSteps: hp.WarmupEpochs * stepsPerEpoch}
	// Initial weights are stored in the simulated representation too.
	hp.Precision.ApplyToWeights(params)
	return w
}

// Name implements Workload.
func (w *ImageClassification) Name() string { return "image_classification" }

// Epoch implements Workload.
func (w *ImageClassification) Epoch() int { return w.epoch }

// Steps implements StepCounter.
func (w *ImageClassification) Steps() int { return w.steps }

// TrainEpoch implements Workload.
func (w *ImageClassification) TrainEpoch() float64 {
	totalLoss, n := 0.0, 0
	for i := 0; i < w.loader.StepsPerEpoch(); i++ {
		idx, _ := w.loader.Next()
		var x *tensor.Tensor
		var labels []int
		w.bx, w.blabels = w.DS.BatchInto(w.bx, w.blabels, true, idx, w.augment)
		x, labels = w.bx, w.blabels
		applySchedule(w.Opt, w.Sched, w.steps)
		loss := trainStepMP(w.tape, w.params, w.Opt, w.mp, func(tape *autograd.Tape) *autograd.Var {
			ctx := nn.NewCtx(tape, true, w.rng)
			logits := w.Net.Forward(ctx, tape.ConstOf(x))
			return autograd.SoftmaxCrossEntropy(logits, labels)
		}, func() {
			w.HP.Precision.ApplyToGrads(w.params)
		})
		// Weights are stored in the simulated representation: quantize
		// after every update (Figure 1's "weight representation" sweep).
		w.HP.Precision.ApplyToWeights(w.params)
		totalLoss += loss
		n++
		w.steps++
	}
	w.epoch++
	return totalLoss / float64(n)
}

// Evaluate implements Workload: Top-1 accuracy on the validation split.
func (w *ImageClassification) Evaluate() float64 {
	batch := 64
	var preds, labels []int
	for lo := 0; lo < w.DS.Cfg.ValN; lo += batch {
		hi := lo + batch
		if hi > w.DS.Cfg.ValN {
			hi = w.DS.Cfg.ValN
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, lb := w.DS.Batch(false, idx, nil)
		tape := autograd.NewTape()
		ctx := nn.NewCtx(tape, false, w.rng)
		logits := w.Net.Forward(ctx, autograd.Const(x))
		preds = append(preds, logits.Value.ArgMaxRows()...)
		labels = append(labels, lb...)
	}
	return metrics.Top1Accuracy(preds, labels)
}

// ValError returns 1 - accuracy, the y-axis of Figure 1.
func (w *ImageClassification) ValError() float64 { return 1 - w.Evaluate() }
