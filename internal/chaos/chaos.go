// Package chaos is the seeded fault-injection layer: every fault a test
// or smoke run injects — worker crashes, dropped connections, corrupted
// frames, straggler delays, slow inference — is drawn from a FaultPlan
// that is a pure function of its seed, the PoissonSchedule discipline of
// internal/serve applied to failure testing. Two runs with the same seed
// and config inject byte-for-byte the same faults at the same points, so
// chaos runs are as reproducible as the training they disturb, and a
// failure found under chaos can be replayed exactly.
//
// The package has two halves:
//
//   - Plan: the per-run schedule. Crash(gen) says which rank of
//     generation gen dies at which step (the grid supervisor's test
//     diet); SlowBackend wraps a serve.Backend with deterministic
//     inference delays (the SLO-degradation diet).
//   - Wrap/ConnFaults: a net.Conn wrapper injecting wire-level faults —
//     frame corruption (the CRC-32C check must catch it), connection
//     drops, and per-write delays — installed through
//     transport.TCPOptions.WrapConn.
package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/tensor"
)

// PlanConfig shapes a fault plan.
type PlanConfig struct {
	// World is the grid's rank count (crash victims are drawn from it).
	World int
	// Steps is the planned optimizer-step count of one run; crash steps
	// are drawn from its second half so at least one checkpoint boundary
	// precedes every crash.
	Steps int
	// Crashes is how many generations get a crash: generations
	// 0..Crashes-1 each lose one worker, later generations run clean (the
	// supervised run therefore terminates after exactly Crashes restarts).
	Crashes int
	// SlowEvery delays every SlowEvery-th inference batch of a wrapped
	// serving backend (0 disables).
	SlowEvery int
	// SlowDelay is the injected inference delay.
	SlowDelay time.Duration
}

// CrashPoint is one scheduled worker crash: rank Rank exits hard when its
// step counter reaches Step.
type CrashPoint struct {
	Rank, Step int
}

// Plan is a materialized fault schedule — a pure function of (seed,
// config): construction draws every decision up front from a private
// tensor.RNG stream, so equal inputs give equal plans.
type Plan struct {
	seed    uint64
	cfg     PlanConfig
	crashes []CrashPoint
}

// NewPlan derives the fault schedule for one run family.
func NewPlan(seed uint64, cfg PlanConfig) *Plan {
	if cfg.World <= 0 && cfg.Crashes > 0 {
		panic(fmt.Sprintf("chaos: plan with %d crashes over world %d", cfg.Crashes, cfg.World))
	}
	p := &Plan{seed: seed, cfg: cfg}
	rng := tensor.NewRNG(seed).Split(0xC4A05)
	for g := 0; g < cfg.Crashes; g++ {
		// Second-half steps only: a checkpoint cadence that divides
		// Steps/2 is guaranteed a sealed checkpoint before the crash.
		lo := cfg.Steps / 2
		if lo < 1 {
			lo = 1
		}
		step := lo
		if cfg.Steps > lo {
			step = lo + rng.Intn(cfg.Steps-lo)
		}
		p.crashes = append(p.crashes, CrashPoint{Rank: rng.Intn(cfg.World), Step: step})
	}
	return p
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// Config returns the plan's configuration.
func (p *Plan) Config() PlanConfig { return p.cfg }

// Crash returns generation gen's scheduled crash. ok is false for
// generations past the configured crash budget — those run to completion.
func (p *Plan) Crash(gen int) (CrashPoint, bool) {
	if gen < 0 || gen >= len(p.crashes) {
		return CrashPoint{}, false
	}
	return p.crashes[gen], true
}

// SlowBackend wraps a serving backend with the plan's deterministic
// inference delays: every SlowEvery-th batch of each context sleeps
// SlowDelay before computing — the straggler-accelerator injection the
// serve SLO gate must detect. A plan without slow-inference config
// returns the backend unchanged.
func (p *Plan) SlowBackend(b serve.Backend) serve.Backend {
	if p.cfg.SlowEvery <= 0 || p.cfg.SlowDelay <= 0 {
		return b
	}
	inner := b.NewContext
	every, delay := p.cfg.SlowEvery, p.cfg.SlowDelay
	b.NewContext = func() serve.InferContext {
		return &slowCtx{inner: inner(), every: every, delay: delay}
	}
	return b
}

// slowCtx delays every Nth batch. Contexts are single-owner (the serve
// contract), so the counter needs no lock.
type slowCtx struct {
	inner serve.InferContext
	every int
	delay time.Duration
	n     int
}

func (s *slowCtx) InferBatch(samples []int, out []float64) {
	s.n++
	if s.n%s.every == 0 {
		time.Sleep(s.delay)
	}
	s.inner.InferBatch(samples, out)
}

// ConnFaults configures one wrapped connection's wire-level faults. The
// zero value injects nothing.
type ConnFaults struct {
	// CorruptWrite, when positive, flips one byte of the CorruptWrite-th
	// Write (1-based). The sender's frame CRC was computed before the
	// flip, so the receiver MUST surface transport.ErrChecksum.
	CorruptWrite int
	// CorruptOffset is the byte offset flipped within that write, clamped
	// to the write's length. Offsets past the 13-byte frame header land
	// in the payload (the CRC-covered region).
	CorruptOffset int
	// DropAfter, when positive, hard-closes the connection after that
	// many Writes have completed — a mid-run connection drop.
	DropAfter int
	// DelayWrite, when positive, sleeps before every Write — a straggler
	// link.
	DelayWrite time.Duration
}

// Wrap layers fault injection over a connection. The wrapper never
// mutates caller buffers (corruption happens on a private copy) and is
// safe for the one-writer/one-reader discipline of transport.TCPMesh.
func Wrap(c net.Conn, f ConnFaults) net.Conn {
	return &conn{Conn: c, f: f}
}

type conn struct {
	net.Conn
	f       ConnFaults
	mu      sync.Mutex
	writes  int
	scratch []byte
}

func (c *conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f.DelayWrite > 0 {
		time.Sleep(c.f.DelayWrite)
	}
	if c.f.DropAfter > 0 && c.writes >= c.f.DropAfter {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	c.writes++
	if c.writes == c.f.CorruptWrite {
		c.scratch = append(c.scratch[:0], b...)
		off := c.f.CorruptOffset
		if off >= len(c.scratch) {
			off = len(c.scratch) - 1
		}
		if off >= 0 && len(c.scratch) > 0 {
			c.scratch[off] ^= 0x20
		}
		return c.Conn.Write(c.scratch)
	}
	return c.Conn.Write(b)
}
