package chaos_test

import (
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/serve"
	"repro/internal/transport"
)

// TestPlanDeterminism checks a FaultPlan is a pure function of (seed,
// config): equal inputs give identical schedules, and every drawn crash
// respects the documented bounds.
func TestPlanDeterminism(t *testing.T) {
	cfg := chaos.PlanConfig{World: 8, Steps: 100, Crashes: 5}
	a := chaos.NewPlan(42, cfg)
	b := chaos.NewPlan(42, cfg)
	for g := 0; g < cfg.Crashes; g++ {
		ca, oka := a.Crash(g)
		cb, okb := b.Crash(g)
		if !oka || !okb || !reflect.DeepEqual(ca, cb) {
			t.Fatalf("gen %d: plans diverge: %+v/%v vs %+v/%v", g, ca, oka, cb, okb)
		}
		if ca.Rank < 0 || ca.Rank >= cfg.World {
			t.Errorf("gen %d: rank %d outside [0, %d)", g, ca.Rank, cfg.World)
		}
		if ca.Step < cfg.Steps/2 || ca.Step >= cfg.Steps {
			t.Errorf("gen %d: step %d outside second half [%d, %d)", g, ca.Step, cfg.Steps/2, cfg.Steps)
		}
	}
	if _, ok := a.Crash(cfg.Crashes); ok {
		t.Error("generation past the crash budget still crashes")
	}
	if _, ok := a.Crash(-1); ok {
		t.Error("negative generation reports a crash")
	}
	// Distinct seeds must not all collapse onto one schedule.
	distinct := map[chaos.CrashPoint]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		c, _ := chaos.NewPlan(seed, cfg).Crash(0)
		distinct[c] = true
	}
	if len(distinct) < 2 {
		t.Error("8 seeds share one gen-0 crash point; the plan ignores its seed")
	}
}

// chaosMeshes dials a two-rank loopback mesh with rank 0's peer link
// wrapped in the given faults.
func chaosMeshes(t *testing.T, f chaos.ConnFaults) []*transport.TCPMesh {
	t.Helper()
	const world = 2
	lns := make([]net.Listener, world)
	addrs := make([]string, world)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	optsFor := func(rank int) transport.TCPOptions {
		if rank != 0 {
			return transport.TCPOptions{}
		}
		return transport.TCPOptions{WrapConn: func(peer int, c net.Conn) net.Conn {
			return chaos.Wrap(c, f)
		}}
	}
	meshes := make([]*transport.TCPMesh, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			meshes[r], errs[r] = transport.DialTCPMesh(transport.TCPConfig{
				Rank: r, Addrs: addrs, Listener: lns[r], Opts: optsFor(r),
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, m := range meshes {
			m.Close()
		}
	})
	return meshes
}

// TestWrapCorruptionCaughtByCRC injects a one-byte payload flip into the
// first post-hello frame rank 0 sends and checks the receiver's CRC-32C
// check rejects it: the Recv must surface transport.ErrChecksum, never
// silently deliver corrupted floats.
func TestWrapCorruptionCaughtByCRC(t *testing.T) {
	// Offset 15 lands past the 13-byte frame header, inside the
	// CRC-covered payload region.
	ms := chaosMeshes(t, chaos.ConnFaults{CorruptWrite: 1, CorruptOffset: 15})
	if err := ms[0].Send(1, 3, []float64{1, 2, 3, 4}); err != nil {
		t.Fatalf("send: %v", err)
	}
	_, err := ms[1].Recv(0, 3, make([]float64, 4))
	if err == nil {
		t.Fatal("corrupted frame delivered without error")
	}
	if !errors.Is(err, transport.ErrChecksum) {
		t.Fatalf("recv error %v does not wrap transport.ErrChecksum", err)
	}
	var pe *transport.PeerError
	if !errors.As(err, &pe) || pe.Rank != 0 {
		t.Fatalf("recv error %v is not a *PeerError attributing rank 0", err)
	}
}

// TestWrapDropAfter checks a scheduled connection drop kills the link:
// the first write passes, then the connection hard-closes and both sides
// observe the failure instead of hanging.
func TestWrapDropAfter(t *testing.T) {
	ms := chaosMeshes(t, chaos.ConnFaults{DropAfter: 1})
	if err := ms[0].Send(1, 5, []float64{7}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	got, err := ms[1].Recv(0, 5, make([]float64, 1))
	if err != nil || got[0] != 7 {
		t.Fatalf("first recv: %v, %v", got, err)
	}
	// The second write hits the drop. The failure may surface on this
	// Send or on the receiver, depending on who notices the close first.
	sendErr := ms[0].Send(1, 5, []float64{8})
	_, recvErr := ms[1].Recv(0, 5, make([]float64, 1))
	if sendErr == nil && recvErr == nil {
		t.Fatal("neither side observed the dropped connection")
	}
	for _, err := range []error{sendErr, recvErr} {
		if err == nil {
			continue
		}
		var pe *transport.PeerError
		if !errors.As(err, &pe) {
			t.Fatalf("drop surfaced untyped error %v", err)
		}
	}
}

// TestWrapDelayWrite checks the straggler-link fault delays every write
// by at least the configured duration without corrupting the payload.
func TestWrapDelayWrite(t *testing.T) {
	const delay = 30 * time.Millisecond
	ms := chaosMeshes(t, chaos.ConnFaults{DelayWrite: delay})
	start := time.Now()
	if err := ms[0].Send(1, 2, []float64{1, 2}); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := ms[1].Recv(0, 2, make([]float64, 2))
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("delayed write completed in %v, want >= %v", elapsed, delay)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("delayed payload corrupted: %v", got)
	}
}

// countingCtx records InferBatch calls and fills a recognizable output.
type countingCtx struct{ batches int }

func (c *countingCtx) InferBatch(samples []int, out []float64) {
	c.batches++
	for i, s := range samples {
		out[i] = float64(s) * 2
	}
}

// TestSlowBackend checks the straggler-accelerator injection: every Nth
// batch of a wrapped backend sleeps SlowDelay, and the inner context
// still computes every batch bit-identically.
func TestSlowBackend(t *testing.T) {
	inner := &countingCtx{}
	b := serve.Backend{
		Name:       "test",
		Samples:    16,
		NewContext: func() serve.InferContext { return inner },
	}
	const delay = 20 * time.Millisecond
	p := chaos.NewPlan(1, chaos.PlanConfig{SlowEvery: 2, SlowDelay: delay})
	ctx := p.SlowBackend(b).NewContext()

	out := make([]float64, 2)
	start := time.Now()
	for i := 0; i < 4; i++ {
		ctx.InferBatch([]int{i, i + 1}, out)
		if out[0] != float64(i)*2 || out[1] != float64(i+1)*2 {
			t.Fatalf("batch %d: wrapped context corrupted output %v", i, out)
		}
	}
	// Batches 2 and 4 each slept, so the loop took at least two delays.
	if elapsed := time.Since(start); elapsed < 2*delay {
		t.Errorf("4 batches with SlowEvery=2 took %v, want >= %v", elapsed, 2*delay)
	}
	if inner.batches != 4 {
		t.Errorf("inner context saw %d batches, want 4", inner.batches)
	}

	// A plan without slow-inference config leaves the backend untouched.
	plain := chaos.NewPlan(1, chaos.PlanConfig{}).SlowBackend(b).NewContext()
	if _, ok := plain.(*countingCtx); !ok {
		t.Errorf("unconfigured plan wrapped the context anyway: %T", plain)
	}
}
