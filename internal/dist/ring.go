package dist

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/transport"
)

// Ring stream tags. The ring's two legs multiplex over each member pair's
// link independently of the pipeline engine's boundary streams (whose rank
// pairs differ anyway: ring links connect replicas of one stage, boundary
// links connect adjacent stages of one replica).
const (
	streamReduce uint32 = 0x5244 // "RD": reduce-scatter leg
	streamGather uint32 = 0x4754 // "GT": all-gather leg
)

// Ring is a reusable K-member chunked ring all-reduce over rows of
// flattened gradient contributions — the collective extracted from the
// data-parallel engine so other engines (notably the pipeline-parallel
// stage groups in internal/pipeline) can share one deterministic
// implementation.
//
// A reduction round sums a set of rows (each flatLen long) in ascending row
// order into every member's aggregate buffer. Member w contributes the
// contiguous row range it owns; the reduce-scatter leg pipelines chunks up
// the ring 0 → 1 → … → K−1 with each member adding its rows in ascending
// order, and the all-gather leg circulates the finished chunks K−1 → 0 → …
// → K−2. Because each chunk's partial sums accumulate strictly in ascending
// row order, the result is bit-identical to a serial ascending sum — the
// determinism contract both engines' tests assert.
//
// The legs run over a transport.Mesh, so the same code drives the
// in-process channel fabric (NewRing — the historical single-process form)
// and a multi-process TCP mesh (NewRingOver with an external endpoint per
// local member). Message copies preserve float64 bits, so the backend never
// affects results. All scratch state is allocated once, and warm rounds
// over the in-process fabric perform zero heap allocations.
type Ring struct {
	members int
	chunks  int
	flatLen int

	// eps[w] is member w's mesh endpoint (nil for members hosted by other
	// processes — shard mode has exactly one non-nil entry). A
	// single-member ring needs no endpoints at all.
	eps []transport.Mesh
	// ownFab is set when NewRing built a private in-process fabric; Close
	// then tears the endpoints down too.
	ownFab bool
	// scratch[w] is member w's traveling-chunk buffer (max chunk size).
	scratch [][]float64

	buffers *arena.Arena
}

// NewRing builds a fully in-process ring over the given member count, chunk
// count (the pipelining grain, clamped to [1, flatLen]; it never affects
// results), and flat vector length, drawing its scratch buffers from the
// arena. A single-member ring degenerates to a serial ascending-row sum.
func NewRing(members, chunks, flatLen int, buffers *arena.Arena) *Ring {
	var eps []transport.Mesh
	if members > 1 {
		fab := transport.NewLocalFabric(members, buffers)
		eps = make([]transport.Mesh, members)
		for w := range eps {
			eps[w] = fab.Endpoint(w)
		}
	}
	r := newRing(members, chunks, flatLen, eps, buffers)
	r.ownFab = true
	return r
}

// NewRingOver builds a ring whose members communicate over the given
// external mesh endpoints: eps[w] is member w's endpoint, nil for members
// hosted elsewhere (multi-process shard mode). Each endpoint's World must
// equal len(eps). The ring does not close external endpoints.
func NewRingOver(eps []transport.Mesh, chunks, flatLen int, buffers *arena.Arena) *Ring {
	for w, ep := range eps {
		if ep != nil && ep.World() != len(eps) {
			panic(fmt.Sprintf("dist: NewRingOver endpoint %d has world %d, want %d", w, ep.World(), len(eps)))
		}
	}
	return newRing(len(eps), chunks, flatLen, eps, buffers)
}

func newRing(members, chunks, flatLen int, eps []transport.Mesh, buffers *arena.Arena) *Ring {
	if members < 1 {
		panic(fmt.Sprintf("dist: NewRing members %d < 1", members))
	}
	if flatLen < 1 {
		panic(fmt.Sprintf("dist: NewRing flatLen %d < 1", flatLen))
	}
	if chunks < 1 {
		chunks = members
	}
	if chunks > flatLen {
		chunks = flatLen
	}
	r := &Ring{members: members, chunks: chunks, flatLen: flatLen, eps: eps, buffers: buffers}
	if members > 1 {
		maxChunk := 0
		for c := 0; c < chunks; c++ {
			lo, hi := r.ChunkRange(c)
			if hi-lo > maxChunk {
				maxChunk = hi - lo
			}
		}
		r.scratch = make([][]float64, members)
		for w := range r.scratch {
			if eps[w] != nil {
				r.scratch[w] = buffers.Get(maxChunk) //mlperfvet:owns — ring state, released in Close
			}
		}
	}
	return r
}

// Members returns the ring's member count.
func (r *Ring) Members() int { return r.members }

// Chunks returns the effective chunk count after clamping.
func (r *Ring) Chunks() int { return r.chunks }

// ChunkRange returns chunk c's half-open range in the flat vector, using
// the same contiguous-split arithmetic as data.Shard.
func (r *Ring) ChunkRange(c int) (lo, hi int) {
	return c * r.flatLen / r.chunks, (c + 1) * r.flatLen / r.chunks
}

// RoundMessages returns the number of point-to-point chunk transfers one
// full reduction round performs (across all members).
func (r *Ring) RoundMessages() int { return 2 * (r.members - 1) * r.chunks }

// RoundBytes returns the total payload one full reduction round moves over
// ring links (8 bytes per float64 element).
func (r *Ring) RoundBytes() int { return 2 * (r.members - 1) * r.flatLen * 8 }

// AllReduce executes member w's part of one reduction round: rows[rlo:rhi)
// are the rows member w contributes, and on return agg holds the ascending-
// order sum of ALL rows (identical bits at every member). Every member must
// run AllReduce concurrently once per round — as goroutines in-process, as
// OS processes over a TCP mesh; rows is member-local state whose row range
// [rlo, rhi) must be fully written before the call (other rows may be nil).
//
// A transport failure surfaces as a typed *transport.PeerError; the caller
// should then Abort its membership so ring neighbors blocked on it fail
// fast instead of deadlocking the round.
func (r *Ring) AllReduce(w int, rows [][]float64, rlo, rhi int, agg []float64) error {
	if r.members == 1 {
		// Degenerate ring: same ascending-row accumulation order as the
		// multi-member path, chunk by chunk.
		for c := 0; c < r.chunks; c++ {
			lo, hi := r.ChunkRange(c)
			for i := lo; i < hi; i++ {
				agg[i] = 0
			}
			for m := range rows {
				row := rows[m]
				for i := lo; i < hi; i++ {
					agg[i] += row[i]
				}
			}
		}
		return nil
	}

	K := r.members
	ep := r.eps[w]
	scratch := r.scratch[w]
	// Reduce-scatter leg: chunk c starts as a zero buffer at member 0 and
	// flows up the ring; each member adds its owned rows in ascending
	// order, so the finished chunk at member K-1 is the ascending-row sum —
	// the fixed reduction order the determinism contract requires. Sends
	// never block on the receiver, so the chunks pipeline freely.
	for c := 0; c < r.chunks; c++ {
		lo, hi := r.ChunkRange(c)
		n := hi - lo
		buf := scratch[:n]
		if w == 0 {
			for i := range buf {
				buf[i] = 0
			}
		} else {
			got, err := ep.Recv(w-1, streamReduce, buf)
			if err != nil {
				return err
			}
			if len(got) != n {
				return fmt.Errorf("dist: ring reduce chunk %d carried %d elements, want %d: %w", c, len(got), n, transport.ErrBadFrame)
			}
			buf = got
		}
		for m := rlo; m < rhi; m++ {
			row := rows[m]
			for i := lo; i < hi; i++ {
				buf[i-lo] += row[i]
			}
		}
		if w < K-1 {
			if err := ep.Send(w+1, streamReduce, buf); err != nil {
				return err
			}
		} else {
			copy(agg[lo:hi], buf)
			// Start the all-gather leg at member 0.
			if err := ep.Send(0, streamGather, buf); err != nil {
				return err
			}
		}
	}
	// All-gather leg: fully-reduced chunks flow K-1 -> 0 -> ... -> K-2;
	// every member copies each chunk into its local aggregate.
	if w < K-1 {
		prev := w - 1
		if prev < 0 {
			prev = K - 1
		}
		for c := 0; c < r.chunks; c++ {
			lo, hi := r.ChunkRange(c)
			n := hi - lo
			got, err := ep.Recv(prev, streamGather, scratch[:n])
			if err != nil {
				return err
			}
			if len(got) != n {
				return fmt.Errorf("dist: ring gather chunk %d carried %d elements, want %d: %w", c, len(got), n, transport.ErrBadFrame)
			}
			copy(agg[lo:hi], got)
			if w+1 < K-1 {
				if err := ep.Send(w+1, streamGather, got); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Abort withdraws member w from the ring after a failure: its endpoint's
// own rank is marked down with the given cause, so neighbors blocked on
// messages from w fail with a typed error instead of deadlocking, and the
// failure cascades around the ring until every member has returned.
func (r *Ring) Abort(w int, cause error) {
	if r.eps == nil || r.eps[w] == nil {
		return
	}
	ep := r.eps[w]
	ep.Fail(ep.Rank(), cause)
}

// Close returns the ring's scratch buffers to its arena and, when the ring
// owns its in-process fabric, closes the member endpoints. The ring must
// not be used afterwards; Close is idempotent.
func (r *Ring) Close() {
	for w, buf := range r.scratch {
		if buf != nil {
			r.buffers.Put(buf)
			r.scratch[w] = nil
		}
	}
	r.scratch = nil
	if r.ownFab {
		for _, ep := range r.eps {
			if ep != nil {
				ep.Close()
			}
		}
	}
	r.eps = nil
}
