package dist

import (
	"fmt"

	"repro/internal/arena"
)

// Ring is a reusable K-member chunked ring all-reduce over rows of
// flattened gradient contributions — the collective extracted from the
// data-parallel engine so other engines (notably the pipeline-parallel
// stage groups in internal/pipeline) can share one deterministic
// implementation.
//
// A reduction round sums a set of rows (each flatLen long) in ascending row
// order into every member's aggregate buffer. Member w contributes the
// contiguous row range it owns; the reduce-scatter leg pipelines chunks up
// the ring 0 → 1 → … → K−1 with each member adding its rows in ascending
// order, and the all-gather leg circulates the finished chunks K−1 → 0 → …
// → K−2. Because each chunk's partial sums accumulate strictly in ascending
// row order, the result is bit-identical to a serial ascending sum — the
// determinism contract both engines' tests assert.
//
// All channel and traveling-chunk state is allocated once in NewRing, so a
// warm AllReduce performs zero heap allocations.
type Ring struct {
	members int
	chunks  int
	flatLen int

	// reduce[w] carries partially-reduced chunks from member w-1 to member
	// w; gather[w] carries fully-reduced chunks to member w. Capacity
	// chunks makes every send non-blocking, so the two legs pipeline
	// freely without deadlock and both channel sets drain every round.
	reduce []chan []float64
	gather []chan []float64
	bufs   [][]float64

	buffers *arena.Arena
}

// NewRing builds a ring over the given member count, chunk count (the
// pipelining grain, clamped to [1, flatLen]; it never affects results),
// and flat vector length, drawing its traveling chunk buffers from the
// arena. A single-member ring degenerates to a serial ascending-row sum
// and allocates no channel state.
func NewRing(members, chunks, flatLen int, buffers *arena.Arena) *Ring {
	if members < 1 {
		panic(fmt.Sprintf("dist: NewRing members %d < 1", members))
	}
	if flatLen < 1 {
		panic(fmt.Sprintf("dist: NewRing flatLen %d < 1", flatLen))
	}
	if chunks < 1 {
		chunks = members
	}
	if chunks > flatLen {
		chunks = flatLen
	}
	r := &Ring{members: members, chunks: chunks, flatLen: flatLen, buffers: buffers}
	if members > 1 {
		r.reduce = make([]chan []float64, members)
		r.gather = make([]chan []float64, members)
		for w := 0; w < members; w++ {
			r.reduce[w] = make(chan []float64, chunks)
			r.gather[w] = make(chan []float64, chunks)
		}
		r.bufs = make([][]float64, chunks)
		for c := range r.bufs {
			lo, hi := r.ChunkRange(c)
			r.bufs[c] = buffers.Get(hi - lo) //mlperfvet:owns — ring state, released in Close
		}
	}
	return r
}

// Members returns the ring's member count.
func (r *Ring) Members() int { return r.members }

// Chunks returns the effective chunk count after clamping.
func (r *Ring) Chunks() int { return r.chunks }

// ChunkRange returns chunk c's half-open range in the flat vector, using
// the same contiguous-split arithmetic as data.Shard.
func (r *Ring) ChunkRange(c int) (lo, hi int) {
	return c * r.flatLen / r.chunks, (c + 1) * r.flatLen / r.chunks
}

// RoundMessages returns the number of point-to-point chunk transfers one
// full reduction round performs.
func (r *Ring) RoundMessages() int { return 2 * (r.members - 1) * r.chunks }

// RoundBytes returns the total payload one full reduction round moves over
// ring links (8 bytes per float64 element).
func (r *Ring) RoundBytes() int { return 2 * (r.members - 1) * r.flatLen * 8 }

// AllReduce executes member w's part of one reduction round: rows[rlo:rhi)
// are the rows member w contributes, and on return agg holds the ascending-
// order sum of ALL rows (identical bits at every member). Every member must
// call AllReduce concurrently once per round; rows is shared state whose
// row range [rlo, rhi) must be fully written by member w before its call.
//
//mlperfvet:hotpath
func (r *Ring) AllReduce(w int, rows [][]float64, rlo, rhi int, agg []float64) {
	if r.members == 1 {
		// Degenerate ring: same ascending-row accumulation order as the
		// multi-member path, chunk by chunk.
		for c := 0; c < r.chunks; c++ {
			lo, hi := r.ChunkRange(c)
			for i := lo; i < hi; i++ {
				agg[i] = 0
			}
			for m := range rows {
				row := rows[m]
				for i := lo; i < hi; i++ {
					agg[i] += row[i]
				}
			}
		}
		return
	}

	K := r.members
	// Reduce-scatter leg: chunk c starts as a zero buffer at member 0 and
	// flows up the ring; each member adds its owned rows in ascending
	// order, so the finished chunk at member K-1 is the ascending-row sum —
	// the fixed reduction order the determinism contract requires.
	for c := 0; c < r.chunks; c++ {
		lo, hi := r.ChunkRange(c)
		var buf []float64
		if w == 0 {
			buf = r.bufs[c]
			for i := range buf {
				buf[i] = 0
			}
		} else {
			buf = <-r.reduce[w]
		}
		for m := rlo; m < rhi; m++ {
			row := rows[m]
			for i := lo; i < hi; i++ {
				buf[i-lo] += row[i]
			}
		}
		if w < K-1 {
			r.reduce[w+1] <- buf
		} else {
			copy(agg[lo:hi], buf)
			r.gather[0] <- buf // start the all-gather leg
		}
	}
	// All-gather leg: fully-reduced chunks flow K-1 -> 0 -> ... -> K-2;
	// every member copies each chunk into its local aggregate.
	if w < K-1 {
		for c := 0; c < r.chunks; c++ {
			buf := <-r.gather[w]
			lo, hi := r.ChunkRange(c)
			copy(agg[lo:hi], buf)
			if w+1 < K-1 {
				r.gather[w+1] <- buf
			}
		}
	}
}

// Close returns the ring's traveling chunk buffers to its arena. The ring
// must not be used afterwards; Close is idempotent.
func (r *Ring) Close() {
	for _, buf := range r.bufs {
		r.buffers.Put(buf)
	}
	r.bufs = nil
}
