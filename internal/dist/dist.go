// Package dist implements a real — not analytic — synchronous data-parallel
// training engine: K simulated workers run as goroutines, each holding a
// full replica of the model parameters and training on a data.Shard-derived
// slice of every global minibatch. Gradients are exchanged per step through
// a chunked ring all-reduce (pipelined reduce-scatter followed by an
// all-gather leg) over the flattened gradient vector, the communication
// pattern of the TPU-pod and GPU-cluster submissions the paper reports
// (§5, Figures 4–5). internal/cluster models this analytically; this
// package executes it, so scaling curves can be measured instead of only
// simulated.
//
// The ring runs over the pluggable transport layer (internal/transport):
// by default the workers are goroutines exchanging chunks through the
// in-process channel fabric, but with Config.Mesh set the engine runs in
// multi-process shard mode — it hosts only the worker Config.Rank names and
// reduces gradients with the other OS processes over TCP (launched by
// cmd/mlperf-worker; see internal/grid). Message copies preserve float64
// bits, so the backend never affects results.
//
// # Determinism
//
// Gradient aggregation uses a fixed reduction order, making training
// reproducible and — unlike naive data parallelism — invariant to the
// worker count. The unit of reduction is the microshard: every global batch
// is split into F = Config.Microshards contiguous shards (data.Shard
// semantics), each microshard's gradient is computed by exactly one worker,
// and the ring sums microshard gradients in ascending microshard order
// regardless of how they are distributed over workers. Two runs with the
// same seed, global batch, and Microshards therefore produce bit-identical
// parameters at every step for ANY worker count dividing Microshards —
// dist at K ∈ {2, 4, 8} workers matches the K = 1 serial run exactly, the
// property the engine's tests assert. (Floating-point addition is not
// associative, so without the fixed microshard order the partial sums would
// drift across worker counts.)
package dist

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/arena"
	"repro/internal/autograd"
	"repro/internal/clock"
	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/precision"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Trainable is the per-replica model contract. internal/models workloads
// implement it structurally (no import needed): the engine drives forward/
// backward itself, so implementations only build the loss for one
// microbatch.
type Trainable interface {
	// Params returns the replica's trainable parameters in a stable order
	// (identical across replicas built from the same factory and seed).
	Params() []*autograd.Param
	// MicrobatchLoss runs the forward pass over the given example indices
	// and returns the mean loss. All stochasticity (augmentation, negative
	// sampling, dropout) must flow through rng, which the engine derives
	// deterministically from (seed, step, microshard) so the same
	// microshard sees the same randomness at every worker count.
	MicrobatchLoss(tape *autograd.Tape, idx []int, rng *tensor.RNG) *autograd.Var
}

// Replica couples one worker's model replica with its optimizer. Every
// replica applies the identical aggregated gradient once per step, so
// replicas (and their optimizer states) stay bit-identical forever — the
// invariant real synchronous data parallelism maintains.
type Replica struct {
	Model Trainable
	Opt   opt.Optimizer
}

// Config parameterizes the engine. The embedded transport.Endpoint carries
// the communication-group spec shared with pipeline.Config: Workers (K),
// Chunks, Clock, and the transport selection (Backend/Mesh/Rank for
// multi-process shard mode).
type Config struct {
	transport.Endpoint

	// GlobalBatch is the per-step example count, split over microshards.
	GlobalBatch int
	// Microshards is F, the fixed gradient-reduction granularity; it must
	// be a multiple of Workers. 0 selects Workers — deterministic for that
	// worker count, but cross-worker-count bit-identity requires pinning
	// Microshards to one value (e.g. 8) for every run being compared.
	Microshards int
	// DatasetN is the number of training examples the engine's loader
	// shuffles over.
	DatasetN int
	// DropLast forwards to the loader.
	DropLast bool
	// Seed drives epoch shuffling and the per-(step, microshard) RNG
	// streams.
	Seed uint64
	// Schedule, when non-nil, sets every replica optimizer's learning rate
	// from the global step before each update.
	Schedule opt.Schedule
	// Arena, when non-nil, is the shared buffer pool the engine draws its
	// steady-state float buffers from — and returns them to on Close — so a
	// sequence of engines (e.g. one per run of a run set) recycles buffers
	// instead of growing the heap. Arena is goroutine-safe, so concurrent
	// engines may share one. Nil gives the engine a private arena.
	Arena *arena.Arena
	// Numerics selects the training compute regime (§2.2.3). The zero
	// value is the float64 reference path, bit-identical to pre-numerics
	// engines. Reduced regimes keep the worker-count-invariance contract:
	// the microshard reduction order is unchanged, and in the mixed
	// (bf16 + loss scaling) regime every replica's scale decision is a
	// deterministic function of the identical all-reduced gradients, so
	// the per-replica MP trainers stay in lockstep.
	Numerics precision.Numerics
}

// Stats counts the engine's communication and compute activity.
type Stats struct {
	// Steps is the number of optimizer steps taken.
	Steps int
	// RingMessages is the number of point-to-point chunk transfers,
	// counted for the whole ring (all members, also in shard mode where
	// only one member runs in this process).
	RingMessages int
	// RingBytes is the total payload moved over ring links (8 bytes per
	// float64 element), counted for the whole ring like RingMessages.
	RingBytes int
	// StepTime is cumulative wall time spent inside Step.
	StepTime time.Duration
}

// Engine is a synchronous data-parallel trainer over K replicas.
type Engine struct {
	cfg    Config
	chunks int

	// owned lists the worker indices this process hosts: all of [0, K) in
	// the default in-process mode, exactly {Config.Rank} in multi-process
	// shard mode. Per-worker slices below are K long with nil entries for
	// workers hosted elsewhere.
	owned []int

	replicas []Replica
	params   [][]*autograd.Param // cached per-replica parameter lists
	flatLen  int

	loader *data.Loader
	epoch  int
	step   int

	gbuf   [][]float64 // F microshard gradient rows (owned microshards only)
	agg    [][]float64 // K per-worker aggregated gradients (owned only)
	losses []float64   // F per-microshard weighted losses

	// ring is the chunked all-reduce collective, allocated once from the
	// engine arena: its lanes are fully drained by the end of every step
	// and the traveling chunk buffers are quiescent after the step barrier,
	// so reuse keeps allocation out of the timed hot path that
	// Stats.StepTime measures.
	ring *Ring

	// Steady-state worker state. Workers are persistent goroutines (spawned
	// in New, stopped by Close): each owns a tape whose graph buffers are
	// pooled in a per-worker arena free list, a reusable microshard RNG,
	// and is signaled per step through its start channel. With everything
	// below warm, Step performs zero heap allocations — the property the
	// steady-state benchmarks assert.
	buffers *arena.Arena
	tapes   []*autograd.Tape
	locals  []*arena.Local
	mps     []*precision.MP // per-replica mixed-precision trainers (nil entries when not mixed)
	rngs    []tensor.RNG
	shards  [][]int
	invB    float64
	startCh []chan struct{}
	stepWG  sync.WaitGroup
	closed  bool

	// First step failure (a peer death, a transport error) — sticky; once
	// set the engine refuses further steps. Guarded by failMu: workers
	// record concurrently, Step/Err read.
	failMu  sync.Mutex
	failErr error

	// clock times Step (Config.Clock, defaulted in New).
	clock clock.Clock

	stats Stats
}

// New builds an engine. factory is called sequentially for each worker this
// process hosts — 0..Workers-1 in the default mode, only Config.Rank in
// shard mode — and must return replicas with bit-identical initial
// parameters (build the same model from the same seed).
func New(cfg Config, factory func(worker int) Replica) (*Engine, error) {
	if err := cfg.Endpoint.Validate("dist"); err != nil {
		return nil, err
	}
	if cfg.Sharded() && cfg.Mesh.World() != cfg.Workers {
		return nil, fmt.Errorf("dist: Mesh world %d != Workers %d", cfg.Mesh.World(), cfg.Workers)
	}
	if cfg.GlobalBatch < 1 {
		return nil, fmt.Errorf("dist: GlobalBatch %d < 1", cfg.GlobalBatch)
	}
	if cfg.DatasetN < 1 {
		return nil, fmt.Errorf("dist: DatasetN %d < 1", cfg.DatasetN)
	}
	if cfg.DropLast && cfg.GlobalBatch > cfg.DatasetN {
		return nil, fmt.Errorf("dist: DropLast with GlobalBatch %d > DatasetN %d yields zero steps per epoch", cfg.GlobalBatch, cfg.DatasetN)
	}
	if cfg.Microshards < 0 {
		return nil, fmt.Errorf("dist: Microshards %d < 0 (0 selects Workers)", cfg.Microshards)
	}
	if cfg.Microshards == 0 {
		cfg.Microshards = cfg.Workers
	}
	if cfg.Microshards < cfg.Workers || cfg.Microshards%cfg.Workers != 0 {
		return nil, fmt.Errorf("dist: Microshards %d must be a positive multiple of Workers %d", cfg.Microshards, cfg.Workers)
	}
	if cfg.Microshards > cfg.GlobalBatch {
		// With more microshards than examples per batch, some microshards
		// are empty on EVERY step, so the workers owning only empty shards
		// would silently train nothing (Workers > GlobalBatch is the
		// degenerate case, since Microshards defaults to Workers).
		return nil, fmt.Errorf("dist: Microshards %d > GlobalBatch %d leaves permanently empty gradient shards (reduce Workers/Microshards or raise the batch)", cfg.Microshards, cfg.GlobalBatch)
	}
	if factory == nil {
		return nil, fmt.Errorf("dist: nil replica factory")
	}

	e := &Engine{cfg: cfg, clock: cfg.Clock}
	if e.clock == nil {
		e.clock = clock.NewReal()
	}
	if cfg.Sharded() {
		e.owned = []int{cfg.Rank}
	} else {
		e.owned = make([]int, cfg.Workers)
		for w := range e.owned {
			e.owned[w] = w
		}
	}
	e.replicas = make([]Replica, cfg.Workers)
	e.params = make([][]*autograd.Param, cfg.Workers)
	for _, w := range e.owned {
		rep := factory(w)
		if rep.Model == nil || rep.Opt == nil {
			return nil, fmt.Errorf("dist: factory returned incomplete replica %d", w)
		}
		e.replicas[w] = rep
		e.params[w] = rep.Model.Params()
	}
	e.flatLen = autograd.FlatSize(e.params[e.owned[0]])
	if e.flatLen == 0 {
		return nil, fmt.Errorf("dist: replica has no parameters")
	}
	// Cross-replica identity is only checkable within this process; in
	// shard mode the bit-identity of remote replicas is the launcher's
	// responsibility (same factory, same seed) and the trajectory digests
	// exchanged through the rendezvous verify it after the fact.
	for _, w := range e.owned {
		if w != e.owned[0] && !autograd.ParamsEqual(e.params[w], e.params[e.owned[0]]) {
			return nil, fmt.Errorf("dist: replica %d parameters differ from replica %d (factory must build identical replicas)", w, e.owned[0])
		}
	}

	e.loader = data.NewLoader(cfg.DatasetN, cfg.GlobalBatch, LoaderRNG(cfg.Seed))
	e.loader.DropLast = cfg.DropLast

	// All steady-state float buffers come from the engine arena: the
	// microshard gradient rows, the per-worker aggregates, and the ring's
	// traveling chunks. With a shared cfg.Arena, Close returns them for
	// reuse by the next engine drawing from the same pool.
	e.buffers = cfg.Arena
	if e.buffers == nil {
		e.buffers = arena.New()
	}
	e.gbuf = make([][]float64, cfg.Microshards)
	e.agg = make([][]float64, cfg.Workers)
	K, F := cfg.Workers, cfg.Microshards
	for _, w := range e.owned {
		for m := w * F / K; m < (w+1)*F/K; m++ {
			e.gbuf[m] = e.buffers.Get(e.flatLen) //mlperfvet:owns — engine state, released in Close
		}
		e.agg[w] = e.buffers.Get(e.flatLen) //mlperfvet:owns — engine state, released in Close
	}
	e.losses = make([]float64, cfg.Microshards)
	e.shards = make([][]int, cfg.Microshards)
	if cfg.Sharded() {
		eps := make([]transport.Mesh, cfg.Workers)
		eps[cfg.Rank] = cfg.Mesh
		e.ring = NewRingOver(eps, cfg.Chunks, e.flatLen, e.buffers)
	} else {
		e.ring = NewRing(cfg.Workers, cfg.Chunks, e.flatLen, e.buffers)
	}
	e.chunks = e.ring.Chunks()

	// Per-worker steady-state state: a tape backed by a private free list
	// over the engine arena (only that worker's goroutine touches it) and a
	// reusable microshard RNG.
	e.tapes = make([]*autograd.Tape, cfg.Workers)
	e.locals = make([]*arena.Local, cfg.Workers)
	e.mps = make([]*precision.MP, cfg.Workers)
	for _, w := range e.owned {
		e.locals[w] = e.buffers.NewLocal()
		e.tapes[w] = autograd.NewTapeIn(e.locals[w]) //mlperfvet:owns — engine state, released in Close
		e.tapes[w].SetDType(cfg.Numerics.Compute)
		e.mps[w] = cfg.Numerics.NewTrainer(e.params[w])
	}
	e.rngs = make([]tensor.RNG, cfg.Workers)

	// Persistent worker goroutines: spawning per step would put one
	// goroutine + closure allocation per worker on the hot path; instead
	// each worker parks on its start channel and the step barrier is the
	// shared WaitGroup. A single owned worker (serial engines, shard mode)
	// runs inline on the Step goroutine instead.
	if len(e.owned) > 1 {
		e.startCh = make([]chan struct{}, cfg.Workers)
		for _, w := range e.owned {
			e.startCh[w] = make(chan struct{}, 1)
			go func(w int) {
				for range e.startCh[w] {
					if err := e.runWorker(w, e.shards, e.invB); err != nil {
						e.fail(err)
					}
					e.stepWG.Done()
				}
			}(w)
		}
	}
	return e, nil
}

// Close stops the engine's persistent worker goroutines and returns the
// engine's gradient, aggregate, and ring buffers to its arena (relevant
// when Config.Arena is shared across engines). In shard mode the injected
// Mesh is NOT closed — its lifecycle belongs to the launcher. The engine
// must not be stepped afterwards; Close is idempotent and safe on serial
// (Workers == 1) engines.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, ch := range e.startCh {
		if ch != nil {
			close(ch)
		}
	}
	for _, buf := range e.gbuf {
		if buf != nil {
			e.buffers.Put(buf)
		}
	}
	for _, buf := range e.agg {
		if buf != nil {
			e.buffers.Put(buf)
		}
	}
	e.ring.Close()
	e.gbuf, e.agg = nil, nil
	// The tapes hold the dominant buffer population (activations,
	// gradients, conv scratch); release them into the per-worker free
	// lists and spill those to the shared arena so the next engine drawing
	// from cfg.Arena reuses the full working set. Safe from this
	// goroutine: the workers are stopped.
	for _, w := range e.owned {
		e.tapes[w].ReleaseBuffers()
		e.locals[w].Flush()
	}
}

// Workers returns the engine's worker count (the whole group, also in shard
// mode).
func (e *Engine) Workers() int { return e.cfg.Workers }

// Replica returns worker w's replica (replica 0 is the conventional source
// for evaluation). In shard mode only the local rank's replica exists;
// other workers return a zero Replica.
func (e *Engine) Replica(w int) Replica { return e.replicas[w] }

// Params returns the first locally-hosted replica's parameters (replica 0
// in the default mode, the local rank's in shard mode).
func (e *Engine) Params() []*autograd.Param { return e.params[e.owned[0]] }

// FlatSize returns the flattened gradient length (the all-reduce payload in
// elements; multiply by 8 for bytes).
func (e *Engine) FlatSize() int { return e.flatLen }

// Steps returns the number of optimizer steps taken.
func (e *Engine) Steps() int { return e.step }

// Epoch returns the number of completed training epochs.
func (e *Engine) Epoch() int { return e.epoch }

// StepsPerEpoch returns the engine loader's steps per epoch.
func (e *Engine) StepsPerEpoch() int { return e.loader.StepsPerEpoch() }

// Stats returns cumulative activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// Err returns the first failure recorded by a step — a peer death or
// transport error, typically a *transport.PeerError — or nil. Once set,
// further Steps are refused (they return 0 immediately).
func (e *Engine) Err() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failErr
}

func (e *Engine) fail(err error) {
	e.failMu.Lock()
	if e.failErr == nil {
		e.failErr = err
	}
	e.failMu.Unlock()
}

// InSync reports whether all locally-hosted replicas hold bit-identical
// parameters (trivially true in shard mode).
func (e *Engine) InSync() bool {
	for _, w := range e.owned {
		if !autograd.ParamsEqual(e.params[w], e.params[e.owned[0]]) {
			return false
		}
	}
	return true
}

// LoaderRNG derives the shuffling stream of an engine's loader from the run
// seed. Exported so serial baselines can traverse the data in exactly the
// engine's order. The stream depends only on the seed, never on the worker
// count, so every worker count sees the same global batches.
func LoaderRNG(seed uint64) *tensor.RNG { return tensor.NewRNG(seed).Split(0xDA7A) }

// MicroshardRNG derives the deterministic randomness stream for microshard
// m at the given step of a run seeded with seed: a pure function of
// (seed, step, m), so the same microshard sees the same stream at every
// worker count. Exported so serial baselines can replicate the engine's
// randomness exactly. Supports up to 2^20 microshards.
func MicroshardRNG(seed uint64, step, m int) *tensor.RNG {
	r := &tensor.RNG{}
	MicroshardRNGInto(r, seed, step, m)
	return r
}

// MicroshardRNGInto reseeds dst in place to MicroshardRNG(seed, step, m)'s
// stream — the allocation-free form the engine's steady-state step uses on
// its per-worker RNGs.
func MicroshardRNGInto(dst *tensor.RNG, seed uint64, step, m int) {
	var root tensor.RNG
	root.Reseed(seed ^ 0x9E3779B97F4A7C15)
	root.SplitInto(uint64(step)<<20|uint64(m), dst)
}

// SetSchedule installs (or replaces) the learning-rate schedule applied to
// every replica optimizer before each update. Useful when the schedule can
// only be built after the replicas exist.
func (e *Engine) SetSchedule(s opt.Schedule) { e.cfg.Schedule = s }

// StepNext draws the next global minibatch from the engine's loader and
// executes one synchronous data-parallel step, returning the mean loss.
func (e *Engine) StepNext() float64 {
	idx, _ := e.loader.Next()
	return e.Step(idx)
}

// TrainEpoch runs one full pass over the training data and returns the mean
// per-step loss. A step failure (see Err) ends the epoch early.
func (e *Engine) TrainEpoch() float64 {
	steps := e.loader.StepsPerEpoch()
	total := 0.0
	for i := 0; i < steps; i++ {
		total += e.StepNext()
		if e.Err() != nil {
			break
		}
	}
	e.epoch++
	return total / float64(steps)
}

// Step executes one synchronous data-parallel training step over the given
// global minibatch indices: each worker computes its microshards' gradients,
// the workers ring-all-reduce the flattened gradients, and every replica
// applies the identical aggregated update once. Returns the global mean
// loss (the microshard-size-weighted mean, equal to the mean over all
// examples). In shard mode every process must call Step with the identical
// index set (the seeded loaders guarantee this for StepNext), and the
// return value is only the LOCAL microshards' loss contribution — sum it
// across processes (e.g. through the rendezvous results) for the global
// mean. After a failure (Err non-nil) Step returns 0 without stepping.
func (e *Engine) Step(idx []int) float64 {
	if e.Err() != nil {
		return 0
	}
	start := e.clock.Now()
	K, F := e.cfg.Workers, e.cfg.Microshards

	for m := range e.shards {
		e.shards[m] = data.Shard(idx, m, F)
	}
	e.invB = 1 / float64(len(idx))

	if len(e.owned) == 1 {
		// Serial engines (K == 1) and shard mode both host one worker: run
		// it inline on the caller's goroutine (in shard mode the other
		// members are other OS processes rendezvousing inside AllReduce).
		if err := e.runWorker(e.owned[0], e.shards, e.invB); err != nil {
			e.fail(err)
		}
	} else {
		// Wake the persistent workers (spawned in New) and wait for the
		// step barrier. The channel sends happen-before each worker's
		// iteration, so the shard/invB writes above are visible to it; the
		// WaitGroup orders the workers' writes before the loss reduction
		// below. The workers rendezvous inside Ring.AllReduce, whose
		// buffered lanes make every send non-blocking, so the two
		// collective legs pipeline freely without deadlock.
		e.stepWG.Add(len(e.owned))
		for _, w := range e.owned {
			e.startCh[w] <- struct{}{}
		}
		e.stepWG.Wait()
	}
	if err := e.Err(); err != nil {
		// The step died mid-collective: parameters may be mid-update at
		// some members, so the engine stays failed rather than pretending
		// the step completed.
		return 0
	}
	if K > 1 {
		e.stats.RingMessages += e.ring.RoundMessages()
		e.stats.RingBytes += e.ring.RoundBytes()
	}

	e.step++
	e.stats.Steps++
	e.stats.StepTime += e.clock.Now() - start

	// Weighted losses sum to the global mean loss; fixed ascending-m order
	// keeps the value worker-count-invariant too. (Unowned microshards'
	// entries are always zero, so in shard mode this is the local
	// contribution.)
	loss := 0.0
	for m := 0; m < F; m++ {
		loss += e.losses[m]
	}
	return loss
}

// runWorker is one worker's contribution to a step: local microshard
// gradients, the ring exchange, and the local optimizer update. Worker w
// owns the contiguous microshards [w·F/K, (w+1)·F/K). A transport failure
// aborts the worker's ring membership (cascading to the other members) and
// surfaces as the returned error.
func (e *Engine) runWorker(w int, shards [][]int, invB float64) error {
	K, F := e.cfg.Workers, e.cfg.Microshards
	mlo, mhi := w*F/K, (w+1)*F/K
	rep := e.replicas[w]
	params := e.params[w]

	// --- Local compute: one forward/backward per owned microshard ---
	tape := e.tapes[w]
	rng := &e.rngs[w]
	mp := e.mps[w]
	scale := 1.0
	if mp != nil {
		// Round this replica's live weights to the compute format for the
		// whole step (every microshard sees the same rounded weights, as in
		// the serial trainer) and seed each backward with the loss scale.
		mp.BeginStep()
		scale = mp.Scale()
	}
	for m := mlo; m < mhi; m++ {
		row := e.gbuf[m]
		shard := shards[m]
		if len(shard) == 0 {
			for i := range row {
				row[i] = 0
			}
			e.losses[m] = 0
			continue
		}
		for _, p := range params {
			p.ZeroGrad()
		}
		tape.Reset()
		MicroshardRNGInto(rng, e.cfg.Seed, e.step, m)
		loss := rep.Model.MicrobatchLoss(tape, shard, rng)
		tape.BackwardScaled(loss, scale)
		// Weight by the microshard's share of the global batch so the
		// reduced vector is the gradient of the global mean loss.
		wgt := float64(len(shard)) * invB
		autograd.FlattenGradsScaled(row, params, wgt)
		e.losses[m] = loss.Scalar() * wgt
	}

	// --- Ring all-reduce over the flattened gradient ---
	agg := e.agg[w]
	if err := e.ring.AllReduce(w, e.gbuf, mlo, mhi, agg); err != nil {
		// Withdraw from the ring so members blocked on this worker fail
		// fast instead of deadlocking the step.
		e.ring.Abort(w, err)
		return err
	}

	// --- Apply the aggregated gradient once per step ---
	autograd.ScatterGrads(agg, params)
	opt.ApplySchedule(rep.Opt, e.cfg.Schedule, e.step)
	if mp != nil {
		// Apply restores the float64 masters, checks the all-reduced
		// (scaled) gradient for overflow, and unscales before stepping.
		// Every replica sees the identical aggregated gradient, so every
		// replica makes the identical skip/backoff/growth decision and the
		// per-replica scales never diverge.
		mp.Apply(rep.Opt)
	} else {
		rep.Opt.Step()
	}
	return nil
}
