package dist

import (
	"repro/internal/autograd"
	"repro/internal/models"
)

// Workload adapts an Engine to the models.Workload interface (structurally —
// no models import is needed), so data-parallel training plugs into
// core.Run/core.RunSet unchanged: the harness drives TrainEpoch/Evaluate,
// applies the §3.2.1 timing rules, and emits compliant MLLOG streams while
// the engine trains across K workers under the hood.
type Workload struct {
	name string
	eng  *Engine
	eval func() float64
}

// NewWorkload wraps an engine. eval computes the benchmark's quality metric,
// conventionally from replica 0 (replicas hold bit-identical parameters).
func NewWorkload(name string, eng *Engine, eval func() float64) *Workload {
	return &Workload{name: name, eng: eng, eval: eval}
}

// Name implements models.Workload.
func (w *Workload) Name() string { return w.name }

// TrainEpoch implements models.Workload.
func (w *Workload) TrainEpoch() float64 { return w.eng.TrainEpoch() }

// Evaluate implements models.Workload.
func (w *Workload) Evaluate() float64 { return w.eval() }

// Epoch implements models.Workload.
func (w *Workload) Epoch() int { return w.eng.Epoch() }

// Steps implements models.StepCounter.
func (w *Workload) Steps() int { return w.eng.Steps() }

// Engine exposes the underlying engine (stats, replicas).
func (w *Workload) Engine() *Engine { return w.eng }

// Err implements core's optional failure probe: the engine's first recorded
// step failure (peer death, transport error), or nil.
func (w *Workload) Err() error { return w.eng.Err() }

// Close stops the engine's persistent workers and returns its buffers to
// the arena. The measurement harness (core.Run) calls it when a run ends.
func (w *Workload) Close() { w.eng.Close() }

// CaptureTrainState implements ckpt.Stateful by delegating to the engine.
func (w *Workload) CaptureTrainState() *models.TrainState { return w.eng.CaptureTrainState() }

// RestoreTrainState implements ckpt.Stateful by delegating to the engine.
func (w *Workload) RestoreTrainState(st *models.TrainState) error { return w.eng.RestoreTrainState(st) }

// Params exposes the engine's representative parameter list (replica 0 /
// worker 0's stage gather), so core.Run can capture final-parameter
// snapshots of engine-backed runs.
func (w *Workload) Params() []*autograd.Param { return w.eng.Params() }
