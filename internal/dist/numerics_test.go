package dist_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/precision"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// newNCFEngineNumerics is newNCFEngine with an explicit compute regime.
func newNCFEngineNumerics(t testing.TB, workers, microshards, batch int, seed uint64, num precision.Numerics) *dist.Engine {
	t.Helper()
	ds := recDSOnce()
	hp := models.DefaultNCFHParams()
	eng, err := dist.New(dist.Config{
		Endpoint:    transport.Endpoint{Workers: workers},
		Microshards: microshards,
		GlobalBatch: batch, DatasetN: len(ds.Train), Seed: seed,
		Numerics: num,
	}, func(worker int) dist.Replica {
		m := models.NewRecommendation(ds, hp, seed)
		return dist.Replica{Model: m, Opt: m.Opt}
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestDPNumericsBitIdenticalAcrossWorkerCounts extends the engine's
// headline determinism property to the reduced compute regimes: at a
// fixed seed, batch, and microshard count, f32 and bf16(+loss scaling)
// training with K ∈ {2, 4} workers is bit-identical to the K = 1 run of
// the SAME regime. The f32 GEMM keeps the ascending-k accumulation order
// and every mixed-precision decision is a function of the identical
// all-reduced gradient, so worker count still never changes results.
func TestDPNumericsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	const (
		microshards = 4
		batch       = 64
		seed        = 11
		steps       = 16
	)
	for _, d := range []tensor.DType{tensor.Float32, tensor.BFloat16} {
		num := precision.NumericsFor(d)
		run := func(workers int) ([]float64, []float64) {
			eng := newNCFEngineNumerics(t, workers, microshards, batch, seed, num)
			defer eng.Close()
			var losses []float64
			for s := 0; s < steps; s++ {
				losses = append(losses, eng.StepNext())
			}
			return flatValues(eng), losses
		}
		refParams, refLosses := run(1)
		for _, k := range []int{2, 4} {
			gotParams, gotLosses := run(k)
			for i := range refParams {
				if gotParams[i] != refParams[i] {
					t.Fatalf("%v workers=%d: param element %d = %g, serial %g (not bit-identical)", d, k, i, gotParams[i], refParams[i])
				}
			}
			for s := range refLosses {
				if gotLosses[s] != refLosses[s] {
					t.Fatalf("%v workers=%d: step %d loss %g, serial %g", d, k, s, gotLosses[s], refLosses[s])
				}
			}
		}

		// The regime must actually engage: reduced-precision training has
		// to diverge (in value, not quality) from the fp64 reference.
		f64 := newNCFEngineNumerics(t, 1, microshards, batch, seed, precision.Numerics{})
		defer f64.Close()
		for s := 0; s < steps; s++ {
			f64.StepNext()
		}
		ref64 := flatValues(f64)
		same := true
		for i := range ref64 {
			if refParams[i] != ref64[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v regime produced bitwise-fp64 parameters — reduced path not engaged", d)
		}
	}
}

// TestDPNumericsReplicasStayInSync checks the mixed-precision lockstep
// argument directly: after bf16+loss-scaling steps at K=4, all replicas
// (parameters AND optimizer state, via further steps) remain
// bit-identical — no replica ever made a different scale decision.
func TestDPNumericsReplicasStayInSync(t *testing.T) {
	eng := newNCFEngineNumerics(t, 4, 4, 64, 13, precision.NumericsFor(tensor.BFloat16))
	defer eng.Close()
	for s := 0; s < 12; s++ {
		eng.StepNext()
		if !eng.InSync() {
			t.Fatalf("replicas diverged after step %d under the mixed regime", s+1)
		}
	}
}
