package dist

// Checkpoint capture/restore for the data-parallel engine. The synchronous
// invariant — every replica applies the identical aggregated gradient, so
// replicas and their optimizer states are bit-identical forever — makes
// the engine's checkpoint exactly one replica wide: capture the first
// locally-hosted replica, restore into every locally-hosted one. The
// per-(step, microshard) RNG streams need no entry (pure functions of
// (seed, step, m); the Step counter restores them), and in multi-process
// shard mode every rank's loader replays the same sequence from the same
// state, so each rank's checkpoint is self-contained.

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/opt"
)

// ckptBenchmark labels engine snapshots inside checkpoints.
const distCkptLabel = "dist-engine"

// CaptureTrainState snapshots the engine's full training position:
// parameters and optimizer state of the (representative) first owned
// replica, the loss-scale position in mixed regimes, the loader cursor,
// and the step/epoch counters.
func (e *Engine) CaptureTrainState() *models.TrainState {
	w0 := e.owned[0]
	st := &models.TrainState{
		Step:   e.step,
		Epoch:  e.epoch,
		Params: models.TakeSnapshot(distCkptLabel, e.params[w0]),
	}
	ls := e.loader.State()
	st.Loader = &ls
	if o, ok := e.replicas[w0].Opt.(opt.Stateful); ok {
		st.Opts = []opt.State{o.CaptureState()}
	}
	if mp := e.mps[w0]; mp != nil {
		s := mp.State()
		st.MP = &s
	}
	return st
}

// RestoreTrainState installs a state captured by CaptureTrainState on a
// freshly built engine of the same configuration, restoring every
// locally-hosted replica to the captured position. Subsequent steps are
// bit-identical to the capturing engine's.
func (e *Engine) RestoreTrainState(st *models.TrainState) error {
	if st.Params == nil {
		return fmt.Errorf("dist: train state has no parameter snapshot")
	}
	if len(st.Opts) != 1 {
		return fmt.Errorf("dist: train state has %d optimizer states, engine wants 1", len(st.Opts))
	}
	if st.Loader == nil {
		return fmt.Errorf("dist: train state has no loader position")
	}
	for _, w := range e.owned {
		if err := st.Params.Restore(e.params[w]); err != nil {
			return fmt.Errorf("dist: replica %d: %w", w, err)
		}
		o, ok := e.replicas[w].Opt.(opt.Stateful)
		if !ok {
			return fmt.Errorf("dist: replica %d optimizer %T cannot restore state", w, e.replicas[w].Opt)
		}
		if err := o.RestoreState(st.Opts[0]); err != nil {
			return fmt.Errorf("dist: replica %d: %w", w, err)
		}
		if (st.MP != nil) != (e.mps[w] != nil) {
			return fmt.Errorf("dist: train state mixed-precision presence %v != engine %v", st.MP != nil, e.mps[w] != nil)
		}
		if st.MP != nil {
			e.mps[w].SetState(*st.MP)
		}
	}
	if err := e.loader.SetState(*st.Loader); err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	e.step = st.Step
	e.epoch = st.Epoch
	return nil
}
