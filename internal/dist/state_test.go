package dist_test

import (
	"bytes"
	"testing"

	"repro/internal/ckpt"
)

// TestDPResumeBitIdentity is the data-parallel resume contract: capture at
// step t, serialize through the checkpoint format, restore into a freshly
// built engine, and the continuation is bit-identical to the
// uninterrupted run — losses and parameters.
func TestDPResumeBitIdentity(t *testing.T) {
	const (
		workers     = 2
		microshards = 8
		batch       = 64
		seed        = 11
		stopAt      = 7
		total       = 14
	)
	ref, _ := newNCFEngine(t, workers, microshards, batch, seed)
	defer ref.Close()
	for s := 0; s < stopAt; s++ {
		ref.StepNext()
	}
	st := ref.CaptureTrainState()
	if st.Step != stopAt {
		t.Fatalf("captured step = %d, want %d", st.Step, stopAt)
	}

	// Round-trip through the serialized checkpoint: what lands on disk is
	// what resumes.
	var buf bytes.Buffer
	if _, err := ckpt.Save(&buf, st); err != nil {
		t.Fatalf("ckpt.Save: %v", err)
	}
	loaded, err := ckpt.Load(&buf)
	if err != nil {
		t.Fatalf("ckpt.Load: %v", err)
	}

	var refLosses []float64
	for s := stopAt; s < total; s++ {
		refLosses = append(refLosses, ref.StepNext())
	}
	refParams := flatValues(ref)

	res, _ := newNCFEngine(t, workers, microshards, batch, seed)
	defer res.Close()
	if err := res.RestoreTrainState(loaded); err != nil {
		t.Fatalf("RestoreTrainState: %v", err)
	}
	if res.Steps() != stopAt {
		t.Fatalf("restored engine at step %d, want %d", res.Steps(), stopAt)
	}
	if !res.InSync() {
		t.Fatal("restored replicas are not bit-identical")
	}
	for i, want := range refLosses {
		if got := res.StepNext(); got != want {
			t.Fatalf("resumed step %d loss = %v, reference %v", stopAt+i, got, want)
		}
	}
	gotParams := flatValues(res)
	for i := range refParams {
		if gotParams[i] != refParams[i] {
			t.Fatalf("param element %d = %g, reference %g (resume not bit-identical)", i, gotParams[i], refParams[i])
		}
	}
}

// TestDPRestoreValidation checks structural mismatches are rejected.
func TestDPRestoreValidation(t *testing.T) {
	eng, _ := newNCFEngine(t, 2, 8, 64, 3)
	defer eng.Close()
	eng.StepNext()
	st := eng.CaptureTrainState()

	noParams := *st
	noParams.Params = nil
	if err := eng.RestoreTrainState(&noParams); err == nil {
		t.Error("accepted state without parameters")
	}
	noOpt := *st
	noOpt.Opts = nil
	if err := eng.RestoreTrainState(&noOpt); err == nil {
		t.Error("accepted state without optimizer state")
	}
	noLoader := *st
	noLoader.Loader = nil
	if err := eng.RestoreTrainState(&noLoader); err == nil {
		t.Error("accepted state without loader position")
	}
	if err := eng.RestoreTrainState(st); err != nil {
		t.Errorf("rejected valid state: %v", err)
	}
}
