package dist_test

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/transport"
)

// TestStepAllocsZero asserts the steady-state contract end to end: once a
// few warmup steps have populated the tensor arena, the pooled tape slots,
// and the batch buffers, a full synchronous data-parallel training step —
// forward, backward, ring all-reduce, optimizer update, loader advance —
// performs zero heap allocations, serial and at 4 workers. The kernel pool
// is pinned to 1 worker (see bench_step_test.go for why).
func TestStepAllocsZero(t *testing.T) {
	old := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(old)

	ds := datasets.GenerateRec(datasets.DefaultRecConfig())
	hp := models.DefaultNCFHParams()
	for _, workers := range []int{1, 4} {
		eng, err := dist.New(dist.Config{
			Endpoint:    transport.Endpoint{Workers: workers},
			Microshards: 8,
			GlobalBatch: 256, DatasetN: len(ds.Train), Seed: 1, DropLast: true,
		}, func(worker int) dist.Replica {
			m := models.NewRecommendation(ds, hp, 1)
			return dist.Replica{Model: m, Opt: m.Opt}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			eng.StepNext()
		}
		if n := testing.AllocsPerRun(10, func() { eng.StepNext() }); n != 0 {
			t.Errorf("workers=%d: warm training step allocates %v per step, want 0", workers, n)
		}
		eng.Close()
	}
}

// TestArenaRecyclingAcrossEngines asserts the shared-arena contract that
// core.DPBenchmark relies on: after Close returns an engine's buffers —
// including the per-worker tapes' working sets — to a shared arena, a
// second engine drawing from the same arena warms up mostly from the pool
// instead of the heap.
func TestArenaRecyclingAcrossEngines(t *testing.T) {
	ds := datasets.GenerateRec(datasets.DefaultRecConfig())
	hp := models.DefaultNCFHParams()
	pool := arena.New()
	run := func() {
		eng, err := dist.New(dist.Config{
			Endpoint:    transport.Endpoint{Workers: 2},
			Microshards: 4, Arena: pool,
			GlobalBatch: 64, DatasetN: len(ds.Train), Seed: 1, DropLast: true,
		}, func(worker int) dist.Replica {
			m := models.NewRecommendation(ds, hp, 1)
			return dist.Replica{Model: m, Opt: m.Opt}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			eng.StepNext()
		}
		eng.Close()
	}
	run()
	first := pool.Stats()
	if first.Puts == 0 {
		t.Fatal("Close returned no buffers to the shared arena")
	}
	run()
	second := pool.Stats()
	missed := second.Misses - first.Misses
	if missed*2 > first.Misses {
		t.Errorf("second engine missed %d times vs %d cold misses; shared arena is not recycling", missed, first.Misses)
	}
}

// TestCloseIdempotent covers engine shutdown: Close must stop the
// persistent workers, tolerate repeated calls, and be a no-op on serial
// engines.
func TestCloseIdempotent(t *testing.T) {
	ds := datasets.GenerateRec(datasets.DefaultRecConfig())
	hp := models.DefaultNCFHParams()
	for _, workers := range []int{1, 2} {
		eng, err := dist.New(dist.Config{
			Endpoint:    transport.Endpoint{Workers: workers},
			GlobalBatch: 16, DatasetN: len(ds.Train), Seed: 1,
		}, func(worker int) dist.Replica {
			m := models.NewRecommendation(ds, hp, 1)
			return dist.Replica{Model: m, Opt: m.Opt}
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.StepNext()
		eng.Close()
		eng.Close() // must not panic
	}
}
