package dist_test

import (
	"sync"
	"testing"

	"repro/internal/autograd"
	"repro/internal/data"
	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/transport"
)

var recDSOnce = sync.OnceValue(func() *datasets.RecDataset {
	return datasets.GenerateRec(datasets.DefaultRecConfig())
})

var imgDSOnce = sync.OnceValue(func() *datasets.ImageDataset {
	return datasets.GenerateImages(datasets.DefaultImageConfig())
})

// newNCFEngine builds a data-parallel NCF engine plus its replica models.
func newNCFEngine(t testing.TB, workers, microshards, batch int, seed uint64) (*dist.Engine, []*models.Recommendation) {
	t.Helper()
	ds := recDSOnce()
	hp := models.DefaultNCFHParams()
	var reps []*models.Recommendation
	eng, err := dist.New(dist.Config{
		Endpoint:    transport.Endpoint{Workers: workers},
		Microshards: microshards,
		GlobalBatch: batch, DatasetN: len(ds.Train), Seed: seed,
	}, func(worker int) dist.Replica {
		m := models.NewRecommendation(ds, hp, seed)
		reps = append(reps, m)
		return dist.Replica{Model: m, Opt: m.Opt}
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, reps
}

// flatValues snapshots replica 0's parameter values.
func flatValues(eng *dist.Engine) []float64 {
	var out []float64
	for _, p := range eng.Params() {
		out = append(out, p.Value.Data...)
	}
	return out
}

// The headline determinism property: at a fixed seed, global batch, and
// microshard count, training with K ∈ {2, 4, 8} workers produces
// bit-identical parameters (and losses) to the K = 1 serial run.
func TestDPBitIdenticalAcrossWorkerCounts(t *testing.T) {
	const (
		microshards = 8
		batch       = 64
		seed        = 7
		steps       = 24
	)
	run := func(workers int) ([]float64, []float64) {
		eng, _ := newNCFEngine(t, workers, microshards, batch, seed)
		var losses []float64
		for s := 0; s < steps; s++ {
			losses = append(losses, eng.StepNext())
		}
		return flatValues(eng), losses
	}
	refParams, refLosses := run(1)
	for _, k := range []int{2, 4, 8} {
		gotParams, gotLosses := run(k)
		for i := range refParams {
			if gotParams[i] != refParams[i] {
				t.Fatalf("workers=%d: param element %d = %g, serial %g (not bit-identical)", k, i, gotParams[i], refParams[i])
			}
		}
		for s := range refLosses {
			if gotLosses[s] != refLosses[s] {
				t.Fatalf("workers=%d: step %d loss %g, serial %g", k, s, gotLosses[s], refLosses[s])
			}
		}
	}
}

// The engine at Workers=1, Microshards=1 must match a hand-written serial
// training loop exactly: same loader stream, same per-step RNG, plain
// zero-grad / backward / optimizer step with no flatten or ring machinery.
func TestDPMatchesPlainSerialLoop(t *testing.T) {
	const (
		batch = 64
		seed  = 3
		steps = 12
	)
	ds := recDSOnce()
	hp := models.DefaultNCFHParams()

	eng, _ := newNCFEngine(t, 1, 1, batch, seed)
	for s := 0; s < steps; s++ {
		eng.StepNext()
	}

	plain := models.NewRecommendation(ds, hp, seed)
	loader := data.NewLoader(len(ds.Train), batch, dist.LoaderRNG(seed))
	for s := 0; s < steps; s++ {
		idx, _ := loader.Next()
		for _, p := range plain.Params() {
			p.ZeroGrad()
		}
		tape := autograd.NewTape()
		loss := plain.MicrobatchLoss(tape, idx, dist.MicroshardRNG(seed, s, 0))
		tape.Backward(loss)
		plain.Opt.Step()
	}

	if !autograd.ParamsEqual(eng.Params(), plain.Params()) {
		t.Fatal("engine at workers=1 microshards=1 diverged from the plain serial loop")
	}
}

// Replicas must stay bit-identical across steps — the synchronous
// data-parallel invariant (identical init + identical aggregated gradient
// + identical optimizer update).
func TestDPReplicasStayInSync(t *testing.T) {
	eng, reps := newNCFEngine(t, 4, 8, 64, 11)
	for s := 0; s < 10; s++ {
		eng.StepNext()
		if !eng.InSync() {
			t.Fatalf("replicas out of sync after step %d", s+1)
		}
	}
	for i := 1; i < len(reps); i++ {
		if !autograd.ParamsEqual(reps[i].Params(), reps[0].Params()) {
			t.Fatalf("replica %d parameters differ from replica 0", i)
		}
	}
}

// The chunk count is a pipelining knob: it must never change results.
func TestDPChunkCountInvariant(t *testing.T) {
	ds := recDSOnce()
	hp := models.DefaultNCFHParams()
	run := func(chunks int) []float64 {
		var reps []*models.Recommendation
		eng, err := dist.New(dist.Config{
			Endpoint:    transport.Endpoint{Workers: 4, Chunks: chunks},
			Microshards: 8,
			GlobalBatch: 64, DatasetN: len(ds.Train), Seed: 5,
		}, func(worker int) dist.Replica {
			m := models.NewRecommendation(ds, hp, 5)
			reps = append(reps, m)
			return dist.Replica{Model: m, Opt: m.Opt}
		})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 6; s++ {
			eng.StepNext()
		}
		return flatValues(eng)
	}
	ref := run(1)
	for _, chunks := range []int{3, 4, 16} {
		got := run(chunks)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("chunks=%d changed results at element %d", chunks, i)
			}
		}
	}
}

// Ragged configurations — microshards not dividing the batch, final short
// batch of an epoch — must still train every example exactly once and stay
// worker-count-invariant.
func TestDPRaggedBatchBitIdentical(t *testing.T) {
	const (
		microshards = 6
		batch       = 50 // not divisible by 6
		seed        = 13
		steps       = 8
	)
	run := func(workers int) []float64 {
		eng, _ := newNCFEngine(t, workers, microshards, batch, seed)
		for s := 0; s < steps; s++ {
			eng.StepNext()
		}
		return flatValues(eng)
	}
	ref := run(1)
	for _, k := range []int{2, 3, 6} {
		got := run(k)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d ragged run diverged at element %d", k, i)
			}
		}
	}
}

// The image-classification adapter (conv/BN model with augmentation) must
// also be worker-count-invariant in its trainable parameters.
func TestDPImageBitIdenticalAcrossWorkerCounts(t *testing.T) {
	ds := imgDSOnce()
	hp := models.DefaultImageHParams()
	run := func(workers int) []float64 {
		var reps []*models.ImageClassification
		eng, err := dist.New(dist.Config{
			Endpoint:    transport.Endpoint{Workers: workers},
			Microshards: 4,
			GlobalBatch: hp.Batch, DatasetN: ds.Cfg.TrainN, Seed: 2,
		}, func(worker int) dist.Replica {
			m := models.NewImageClassification(ds, hp, 2)
			reps = append(reps, m)
			return dist.Replica{Model: m, Opt: m.Opt}
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.SetSchedule(reps[0].Sched)
		for s := 0; s < 3; s++ {
			eng.StepNext()
		}
		var out []float64
		for _, p := range eng.Params() {
			out = append(out, p.Value.Data...)
		}
		return out
	}
	ref := run(1)
	for _, k := range []int{2, 4} {
		got := run(k)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d image run diverged at element %d", k, i)
			}
		}
	}
}

func TestDPEngineValidation(t *testing.T) {
	ds := recDSOnce()
	hp := models.DefaultNCFHParams()
	okFactory := func(worker int) dist.Replica {
		m := models.NewRecommendation(ds, hp, 1)
		return dist.Replica{Model: m, Opt: m.Opt}
	}
	cases := []struct {
		name string
		cfg  dist.Config
		fac  func(int) dist.Replica
	}{
		{"zero workers", dist.Config{Endpoint: transport.Endpoint{Workers: 0}, GlobalBatch: 8, DatasetN: 100}, okFactory},
		{"zero batch", dist.Config{Endpoint: transport.Endpoint{Workers: 2}, GlobalBatch: 0, DatasetN: 100}, okFactory},
		{"zero dataset", dist.Config{Endpoint: transport.Endpoint{Workers: 2}, GlobalBatch: 8, DatasetN: 0}, okFactory},
		{"microshards not multiple", dist.Config{Endpoint: transport.Endpoint{Workers: 4}, Microshards: 6, GlobalBatch: 8, DatasetN: 100}, okFactory},
		{"negative workers", dist.Config{Endpoint: transport.Endpoint{Workers: -1}, GlobalBatch: 8, DatasetN: 100}, okFactory},
		{"negative chunks", dist.Config{Endpoint: transport.Endpoint{Workers: 2, Chunks: -1}, GlobalBatch: 8, DatasetN: 100}, okFactory},
		{"negative microshards", dist.Config{Endpoint: transport.Endpoint{Workers: 2}, Microshards: -2, GlobalBatch: 8, DatasetN: 100}, okFactory},
		{"microshards exceed batch", dist.Config{Endpoint: transport.Endpoint{Workers: 2}, Microshards: 16, GlobalBatch: 8, DatasetN: 100}, okFactory},
		{"workers exceed batch", dist.Config{Endpoint: transport.Endpoint{Workers: 16}, GlobalBatch: 8, DatasetN: 100}, okFactory},
		{"droplast batch over dataset", dist.Config{Endpoint: transport.Endpoint{Workers: 2}, GlobalBatch: 200, DatasetN: 100, DropLast: true}, okFactory},
		{"nil factory", dist.Config{Endpoint: transport.Endpoint{Workers: 2}, GlobalBatch: 8, DatasetN: 100}, nil},
		{"mismatched replicas", dist.Config{Endpoint: transport.Endpoint{Workers: 2}, GlobalBatch: 8, DatasetN: 100}, func(worker int) dist.Replica {
			m := models.NewRecommendation(ds, hp, uint64(worker)) // different seeds: different init
			return dist.Replica{Model: m, Opt: m.Opt}
		}},
	}
	for _, c := range cases {
		if _, err := dist.New(c.cfg, c.fac); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// Ring accounting: K workers, C chunks => 2(K-1)C messages and 2(K-1)·L·8
// payload bytes per step, matching the analytic model in internal/cluster.
func TestDPStatsRingAccounting(t *testing.T) {
	eng, _ := newNCFEngine(t, 4, 8, 64, 1)
	eng.StepNext()
	eng.StepNext()
	st := eng.Stats()
	if st.Steps != 2 {
		t.Fatalf("steps = %d", st.Steps)
	}
	wantMsgs := 2 * 2 * (4 - 1) * 4 // steps × 2(K-1) × chunks(defaults to K)
	if st.RingMessages != wantMsgs {
		t.Fatalf("ring messages = %d, want %d", st.RingMessages, wantMsgs)
	}
	wantBytes := 2 * 2 * (4 - 1) * eng.FlatSize() * 8
	if st.RingBytes != wantBytes {
		t.Fatalf("ring bytes = %d, want %d", st.RingBytes, wantBytes)
	}
}
