package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

func refSystem(chips int) System {
	return System{Name: "t", Chips: chips, Chip: ReferenceChip(), Network: ReferenceNetwork()}
}

func TestStepTimeDecomposition(t *testing.T) {
	w := WorkloadModels()[0]
	v05, _ := Rounds()
	single := StepTime(refSystem(1), w, v05, 32)
	// One chip has no all-reduce; time is pure compute.
	wantSec := 32 * w.FlopsPerSample / ReferenceChip().FlopsPerSec
	if got := single.Seconds(); got < wantSec*0.99 || got > wantSec*1.01 {
		t.Fatalf("single-chip step time %v want %v", got, wantSec)
	}
	// At a compute-dominated global batch, 8 chips beat 1 chip per step;
	// at tiny batches the all-reduce dominates and they do not — both
	// behaviours are intended.
	big1 := StepTime(refSystem(1), w, v05, 2048)
	big8 := StepTime(refSystem(8), w, v05, 2048)
	if big8 >= big1 {
		t.Fatal("8 chips should be faster per step at a large global batch")
	}
	small8 := StepTime(refSystem(8), w, v05, 32)
	if small8 <= StepTime(refSystem(1), w, v05, 32) {
		t.Fatal("at tiny batches the all-reduce should dominate")
	}
}

func TestStepTimeCommGrowsWithChips(t *testing.T) {
	w := WorkloadModels()[0]
	v05, _ := Rounds()
	// At fixed per-chip batch, more chips -> more all-reduce latency.
	t64 := StepTime(refSystem(64), w, v05, 64*8)
	t512 := StepTime(refSystem(512), w, v05, 512*8)
	if t512 <= t64 {
		t.Fatal("all-reduce cost must grow with system size at fixed per-chip batch")
	}
}

func TestEpochsToTargetGrowsWithBatch(t *testing.T) {
	w := WorkloadModels()[0] // ResNet model
	small := w.EpochsToTarget(256)
	big := w.EpochsToTarget(16384)
	if big <= small {
		t.Fatal("large batches must need more epochs (§2.2.2)")
	}
}

// §2.2.2's concrete numbers: ResNet-50 takes ~64 epochs at 4K batch and
// over 80 at 16K (≈30% more computation).
func TestResNetBatchPenaltyMatchesPaper(t *testing.T) {
	var resnet WorkloadModel
	for _, w := range WorkloadModels() {
		if w.ID == "image_classification" {
			resnet = w
		}
	}
	e4k := resnet.EpochsToTarget(4096)
	e16k := resnet.EpochsToTarget(16384)
	if e4k < 55 || e4k > 75 {
		t.Fatalf("epochs at 4K batch = %.1f, paper ≈64", e4k)
	}
	if e16k < 78 {
		t.Fatalf("epochs at 16K batch = %.1f, paper >80", e16k)
	}
	if inc := e16k/e4k - 1; inc < 0.2 || inc > 0.5 {
		t.Fatalf("computation increase %.0f%%, paper ≈30%%", inc*100)
	}
}

func TestTimeToTrainValidation(t *testing.T) {
	w := WorkloadModels()[0]
	v05, _ := Rounds()
	if _, err := TimeToTrain(refSystem(16), w, v05, 100); err == nil {
		t.Fatal("non-divisible batch must error")
	}
	if _, err := TimeToTrain(refSystem(1), w, v05, w.MaxBatchPerChip*2); err == nil {
		t.Fatal("memory-exceeding batch must error")
	}
	if _, err := TimeToTrain(refSystem(16), w, v05, 16); err == nil {
		t.Fatal("underutilizing batch must error")
	}
}

func TestBestBatchFeasibleAndOptimal(t *testing.T) {
	w := WorkloadModels()[0]
	v05, _ := Rounds()
	b, best, err := BestBatch(refSystem(16), w, v05)
	if err != nil {
		t.Fatal(err)
	}
	if b%16 != 0 {
		t.Fatal("batch must be divisible by chips")
	}
	// No ladder point beats it.
	for perChip := w.MinBatchPerChip; perChip <= w.MaxBatchPerChip; perChip *= 2 {
		if tt, err := TimeToTrain(refSystem(16), w, v05, perChip*16); err == nil && tt < best {
			t.Fatalf("ladder point %d beats BestBatch", perChip*16)
		}
	}
}

func TestV06FasterAt16Chips(t *testing.T) {
	v05, v06 := Rounds()
	for _, w := range WorkloadModels() {
		_, t05, err1 := BestBatch(refSystem(16), w, v05)
		_, t06, err2 := BestBatch(refSystem(16), w, v06)
		if err1 != nil || err2 != nil {
			continue
		}
		if t06 >= t05 {
			t.Fatalf("%s: v0.6 should beat v0.5 at 16 chips (%v vs %v)", w.ID, t06, t05)
		}
	}
}

func TestFigure4InPaperRegime(t *testing.T) {
	rows := Figure4()
	if len(rows) != 7 {
		t.Fatalf("figure 4 rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1.0 || r.Speedup > 3.0 {
			t.Fatalf("%s speedup %.2f outside plausible band", r.Benchmark, r.Speedup)
		}
	}
	g := GeoMeanSpeedup(rows)
	if g < 1.15 || g > 1.7 {
		t.Fatalf("figure 4 geomean %.2f, paper reports ≈1.3", g)
	}
}

func TestFigure5InPaperRegime(t *testing.T) {
	rows := Figure5()
	if len(rows) != 7 {
		t.Fatalf("figure 5 rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Increase < 1.0 {
			t.Fatalf("%s: optimal scale shrank in v0.6", r.Benchmark)
		}
		if r.V06Time >= r.V05Time {
			t.Fatalf("%s: best overall time regressed", r.Benchmark)
		}
	}
	g := GeoMeanIncrease(rows)
	if g < 3.5 || g > 8.0 {
		t.Fatalf("figure 5 geomean %.1fx, paper reports ≈5.5x", g)
	}
}

func TestCloudScaleMonotoneProperty(t *testing.T) {
	f := func(procsRaw, memRaw, accRaw uint8) bool {
		procs := int(procsRaw)
		mem := float64(memRaw)
		acc := int(accRaw)
		base := CloudScale(procs, mem, acc, 4)
		// Adding resources never lowers the scale metric.
		return CloudScale(procs+1, mem, acc, 4) >= base &&
			CloudScale(procs, mem+64, acc, 4) >= base &&
			CloudScale(procs, mem, acc+1, 4) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadModelsCoverSuite(t *testing.T) {
	ids := map[string]bool{}
	for _, w := range WorkloadModels() {
		ids[w.ID] = true
	}
	for _, want := range []string{
		"image_classification", "object_detection_ssd", "instance_segmentation_maskrcnn",
		"translation_gnmt", "translation_transformer", "recommendation", "reinforcement_learning",
	} {
		if !ids[want] {
			t.Fatalf("missing workload model %s", want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	if FormatDuration(90*time.Second) != "1.5m" {
		t.Fatal("minutes formatting")
	}
	if FormatDuration(2*time.Hour) != "2.0h" {
		t.Fatal("hours formatting")
	}
	if FormatDuration(500*time.Millisecond) != "0.5s" {
		t.Fatal("seconds formatting")
	}
}

// Regression: BestBatch's doubling sweep looped forever when a workload
// passed MinBatchPerChip == 0 (0·2 == 0). A zero min now clamps to 1 and
// the sweep terminates; if this regresses the test hangs and times out.
func TestBestBatchZeroMinTerminates(t *testing.T) {
	w := WorkloadModel{
		ID: "zero-min", DatasetN: 1e5, FlopsPerSample: 1e9, ModelBytes: 1e7,
		BaseEpochs: 5, CritBatch: 1e4, MaxBatchPerChip: 64, MinBatchPerChip: 0,
	}
	sys := System{Name: "t", Chips: 4, Chip: ReferenceChip(), Network: ReferenceNetwork()}
	v05, _ := Rounds()
	b, d, err := BestBatch(sys, w, v05)
	if err != nil {
		t.Fatal(err)
	}
	if b < 4 || d <= 0 {
		t.Fatalf("implausible best batch %d time %v", b, d)
	}
	// BestScale drives the same ladder across system sizes.
	bs, bb, bt := BestScale(ReferenceChip(), ReferenceNetwork(), w, v05)
	if bs.Chips < 1 || bb < 1 || bt <= 0 {
		t.Fatalf("BestScale with zero min: %+v batch %d time %v", bs, bb, bt)
	}
}

// A non-power-of-two min walks the ladder 3, 6, 12, ... and terminates.
func TestBestBatchNonPowerOfTwoMin(t *testing.T) {
	w := WorkloadModel{
		ID: "npo2-min", DatasetN: 1e5, FlopsPerSample: 1e9, ModelBytes: 1e7,
		BaseEpochs: 5, CritBatch: 1e4, MaxBatchPerChip: 48, MinBatchPerChip: 3,
	}
	sys := System{Name: "t", Chips: 2, Chip: ReferenceChip(), Network: ReferenceNetwork()}
	v05, _ := Rounds()
	b, _, err := BestBatch(sys, w, v05)
	if err != nil {
		t.Fatal(err)
	}
	if perChip := b / sys.Chips; perChip < 3 || perChip > 48 {
		t.Fatalf("best per-chip batch %d outside [3,48]", perChip)
	}
}

// An unusable max is an error, not an empty sweep.
func TestBestBatchInvalidMax(t *testing.T) {
	w := WorkloadModel{ID: "bad-max", MaxBatchPerChip: 0}
	sys := System{Chips: 1, Chip: ReferenceChip(), Network: ReferenceNetwork()}
	v05, _ := Rounds()
	if _, _, err := BestBatch(sys, w, v05); err == nil {
		t.Fatal("expected error for MaxBatchPerChip 0")
	}
}

// Calibration ties the analytic model to a measured engine: after fitting,
// the single-chip analytic step time reproduces the measurement.
func TestCalibrateFromMeasurement(t *testing.T) {
	w := WorkloadModels()[0]
	chip := ReferenceChip()
	const measured = 0.125 // seconds per step
	const batch = 256
	v05, v06 := Rounds()
	sys := System{Name: "one", Chips: 1, Chip: chip, Network: ReferenceNetwork()}
	// The fit must round-trip under the round it was made for — including
	// v0.6, whose SoftwareEfficiency is not 1.0.
	for _, round := range []RoundConfig{v05, v06} {
		cal := w.CalibrateFromMeasurement(measured, batch, chip, round, 4e6)
		if cal.ModelBytes != 4e6 {
			t.Fatalf("%s: ModelBytes = %g", round.Version, cal.ModelBytes)
		}
		got := StepTime(sys, cal, round, batch).Seconds()
		if diff := got - measured; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: calibrated step time %v, want %v", round.Version, got, measured)
		}
	}
}
