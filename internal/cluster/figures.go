package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/parallel"
)

// Figure4Row is one bar of Figure 4: the v0.5→v0.6 speedup of the fastest
// 16-chip entry for one benchmark, despite the raised quality targets.
type Figure4Row struct {
	Benchmark string
	V05Time   time.Duration
	V06Time   time.Duration
	Speedup   float64
}

// Figure4 computes the 16-chip speedups for every benchmark. The per-
// workload batch sweeps are independent, so they run concurrently on the
// worker pool; rows keep Table-1 order because each workload writes its
// own index.
func Figure4() []Figure4Row {
	v05, v06 := Rounds()
	chip, net := ReferenceChip(), ReferenceNetwork()
	sys := System{Name: "sim-16x", Chips: 16, Chip: chip, Network: net}
	ws := WorkloadModels()
	cells := make([]*Figure4Row, len(ws))
	parallel.For(len(ws), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			w := ws[i]
			_, t05, err05 := BestBatch(sys, w, v05)
			_, t06, err06 := BestBatch(sys, w, v06)
			if err05 != nil || err06 != nil {
				continue
			}
			cells[i] = &Figure4Row{
				Benchmark: w.ID,
				V05Time:   t05,
				V06Time:   t06,
				Speedup:   float64(t05) / float64(t06),
			}
		}
	})
	var rows []Figure4Row
	for _, c := range cells {
		if c != nil {
			rows = append(rows, *c)
		}
	}
	return rows
}

// Figure5Row is one bar of Figure 5: the increase in the number of chips in
// the system producing the fastest overall score, v0.5→v0.6.
type Figure5Row struct {
	Benchmark string
	V05Chips  int
	V06Chips  int
	Increase  float64
	V05Time   time.Duration
	V06Time   time.Duration
}

// Figure5 computes the best-overall-scale movements for every benchmark,
// sweeping the workloads concurrently as in Figure4.
func Figure5() []Figure5Row {
	v05, v06 := Rounds()
	chip, net := ReferenceChip(), ReferenceNetwork()
	ws := WorkloadModels()
	cells := make([]*Figure5Row, len(ws))
	parallel.For(len(ws), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			w := ws[i]
			s05, _, t05 := BestScale(chip, net, w, v05)
			s06, _, t06 := BestScale(chip, net, w, v06)
			if s05.Chips == 0 || s06.Chips == 0 {
				continue
			}
			cells[i] = &Figure5Row{
				Benchmark: w.ID,
				V05Chips:  s05.Chips,
				V06Chips:  s06.Chips,
				Increase:  float64(s06.Chips) / float64(s05.Chips),
				V05Time:   t05,
				V06Time:   t06,
			}
		}
	})
	var rows []Figure5Row
	for _, c := range cells {
		if c != nil {
			rows = append(rows, *c)
		}
	}
	return rows
}

// GeoMeanSpeedup returns the geometric mean of Figure-4 speedups (the
// paper reports an average of ~1.3×).
func GeoMeanSpeedup(rows []Figure4Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rows {
		s += math.Log(r.Speedup)
	}
	return math.Exp(s / float64(len(rows)))
}

// GeoMeanIncrease returns the geometric mean of Figure-5 chip-count
// increases (the paper reports an average of ~5.5×).
func GeoMeanIncrease(rows []Figure5Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rows {
		s += math.Log(r.Increase)
	}
	return math.Exp(s / float64(len(rows)))
}

// FormatDuration renders simulated times compactly for reports.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}
