package cluster

import (
	"testing"
	"time"
)

func TestPipelineBubble(t *testing.T) {
	if b := (PipelineConfig{Stages: 1, Microbatches: 8}).Bubble(); b != 1 {
		t.Fatalf("S=1 bubble = %v, want 1", b)
	}
	// (M + S − 1)/M: 4 stages, 8 microbatches → 11/8.
	if b := (PipelineConfig{Stages: 4, Microbatches: 8}).Bubble(); b != 11.0/8.0 {
		t.Fatalf("bubble = %v, want %v", b, 11.0/8.0)
	}
}

// At Stages = 1 the pipelined step model must reduce exactly to the pure
// data-parallel StepTime.
func TestStepTimePipelineReducesToStepTime(t *testing.T) {
	v05, _ := Rounds()
	sys := System{Name: "sim-16x", Chips: 16, Chip: ReferenceChip(), Network: ReferenceNetwork()}
	for _, w := range WorkloadModels() {
		got, err := StepTimePipeline(sys, w, v05, 1024, PipelineConfig{Stages: 1, Microbatches: 8})
		if err != nil {
			t.Fatal(err)
		}
		if want := StepTime(sys, w, v05, 1024); got != want {
			t.Fatalf("%s: S=1 pipelined step %v != StepTime %v", w.ID, got, want)
		}
	}
}

// More microbatches shrink the bubble: at fixed depth, step time must be
// non-increasing in M.
func TestStepTimePipelineBubbleShrinksWithMicrobatches(t *testing.T) {
	v05, _ := Rounds()
	sys := System{Name: "sim-16x", Chips: 16, Chip: ReferenceChip(), Network: ReferenceNetwork()}
	w := WorkloadModels()[0]
	pp2, _ := StepTimePipeline(sys, w, v05, 1024, PipelineConfig{Stages: 4, Microbatches: 2})
	pp16, _ := StepTimePipeline(sys, w, v05, 1024, PipelineConfig{Stages: 4, Microbatches: 16})
	if pp16 >= pp2 {
		t.Fatalf("M=16 step %v not faster than M=2 step %v", pp16, pp2)
	}
}

func TestTimeToTrainPipelineValidation(t *testing.T) {
	v05, _ := Rounds()
	sys := System{Name: "sim-16x", Chips: 16, Chip: ReferenceChip(), Network: ReferenceNetwork()}
	w := WorkloadModels()[0]
	cases := []struct {
		name  string
		batch int
		pp    PipelineConfig
	}{
		{"zero stages", 1024, PipelineConfig{Stages: 0, Microbatches: 8}},
		{"zero microbatches", 1024, PipelineConfig{Stages: 2, Microbatches: 0}},
		{"stages not dividing chips", 1024, PipelineConfig{Stages: 3, Microbatches: 8}},
		{"batch not divisible by ranks", 1023, PipelineConfig{Stages: 2, Microbatches: 8}},
		{"per-rank batch exceeds pipelined memory", 16 * 256 * 4, PipelineConfig{Stages: 2, Microbatches: 8}},
		{"fewer examples than microbatches", 64, PipelineConfig{Stages: 2, Microbatches: 16}},
	}
	for _, c := range cases {
		if _, err := TimeToTrainPipeline(sys, w, v05, c.batch, c.pp); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// Pipelining relaxes the concurrency wall: on a system with more chips
// than the global batch can feed under pure DP (per-chip batch below the
// utilization floor), a hybrid DP×PP layout of the SAME system at the
// SAME global batch is feasible — the "limits of concurrency" lever the
// TPU-pod companion papers use — and faster than pure DP on the largest
// feasible pure-DP subset.
func TestPipelineRelaxesConcurrencyWall(t *testing.T) {
	v05, _ := Rounds()
	sys := System{Name: "sim-4096x", Chips: 4096, Chip: ReferenceChip(), Network: ReferenceNetwork()}
	w := WorkloadModels()[0] // image_classification, MinBatchPerChip 4
	batch := 8192            // per-chip batch 2 < 4 under pure DP
	if _, err := TimeToTrain(sys, w, v05, batch); err == nil {
		t.Fatal("expected pure-DP underutilization error")
	}
	hybrid, err := TimeToTrainPipeline(sys, w, v05, batch, PipelineConfig{Stages: 4, Microbatches: 8})
	if err != nil {
		t.Fatalf("hybrid run should be feasible: %v", err)
	}
	// The same batch on the largest pure-DP-feasible system (batch/min
	// chips) is slower than spreading the full 4096 chips via PP.
	small := System{Name: "sim-2048x", Chips: 2048, Chip: ReferenceChip(), Network: ReferenceNetwork()}
	pure, err := TimeToTrain(small, w, v05, batch)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid >= pure {
		t.Fatalf("hybrid on 4096 chips (%v) not faster than pure DP on 2048 (%v)", hybrid, pure)
	}
}

func TestFigurePP(t *testing.T) {
	v05, _ := Rounds()
	rows := FigurePP(v05, 64, 8)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Speedup < 1 {
			t.Fatalf("%s: hybrid sweep returned a slowdown %v (should fall back to S=1)", r.Benchmark, r.Speedup)
		}
		if r.BestStages > 1 && r.HybridTime >= r.DPTime {
			t.Fatalf("%s: S=%d chosen without beating DP (%v >= %v)", r.Benchmark, r.BestStages, r.HybridTime, r.DPTime)
		}
		if r.HybridTime <= 0 || r.DPTime <= 0 {
			t.Fatalf("%s: non-positive times %v/%v", r.Benchmark, r.DPTime, r.HybridTime)
		}
	}
	// At least one workload should benefit from the pipeline axis at this
	// scale (the memory-bound heavyweights).
	any := false
	for _, r := range rows {
		if r.BestStages > 1 {
			any = true
		}
	}
	if !any {
		t.Log("no workload chose S>1 at 64 chips (model calibration)", rows)
	}
	_ = time.Duration(0)
}
