// Package cluster is the simulated scale-out substrate standing in for the
// GPU/TPU clusters MLPerf submissions run on. It models data-parallel
// training time as compute + ring all-reduce per step, with epochs-to-
// target growing with global batch size (the large-batch penalty of
// §2.2.2), and per-round software-efficiency and rule changes (LARS,
// higher targets) that drive the v0.5→v0.6 movements of Figures 4 and 5.
package cluster

import (
	"fmt"
	"math"
	"time"
)

// Chip models one accelerator.
type Chip struct {
	// FlopsPerSec is sustained throughput.
	FlopsPerSec float64
	// MemBytes bounds the per-chip batch (activation memory).
	MemBytes float64
}

// Interconnect models the all-reduce fabric.
type Interconnect struct {
	// BandwidthBytes is per-link bandwidth in bytes/sec.
	BandwidthBytes float64
	// LatencySec is per-hop latency.
	LatencySec float64
}

// System is a homogeneous data-parallel cluster.
type System struct {
	Name    string
	Chips   int
	Chip    Chip
	Network Interconnect
}

// WorkloadModel captures a benchmark's scaling behaviour analytically,
// calibrated so the shapes match both our measured small-scale runs and
// the paper's reported large-scale behaviour.
type WorkloadModel struct {
	ID string
	// DatasetN is the number of training examples per epoch.
	DatasetN float64
	// FlopsPerSample is forward+backward cost per example.
	FlopsPerSample float64
	// ModelBytes is the gradient payload all-reduced each step.
	ModelBytes float64
	// ActBytesPerSample is the per-example boundary-activation payload a
	// pipeline stage forwards to its successor (and receives back as a
	// gradient), used by the pipeline-parallel step model.
	ActBytesPerSample float64
	// BaseEpochs is the epochs-to-target at small batch (E0).
	BaseEpochs float64
	// CritBatch is the batch size where the large-batch penalty bites:
	// epochs(B) = BaseEpochs · (1 + B/CritBatch), the §2.2.2 effect
	// (MLPerf v0.5 ResNet-50: ~64 epochs at 4K batch, >80 at 16K).
	CritBatch float64
	// MaxBatchPerChip bounds per-chip batch by memory.
	MaxBatchPerChip int
	// MinBatchPerChip below which a chip is hopelessly underutilized.
	MinBatchPerChip int
}

// EpochsToTarget returns the expected epochs to reach the quality target at
// global batch b.
func (w WorkloadModel) EpochsToTarget(b int) float64 {
	return w.BaseEpochs * (1 + float64(b)/w.CritBatch)
}

// CalibrateFromMeasurement returns a copy of w with FlopsPerSample fitted so
// the analytic single-chip StepTime under the given round equals a measured
// per-step duration, and ModelBytes set from a measured gradient payload
// (e.g. 8 bytes per element of the dist engine's flattened gradient). The
// round's SoftwareEfficiency is folded into the fit, so the calibration
// round-trips exactly for any round. This ties the analytic Figures 4/5
// sweeps to the real data-parallel engine in internal/dist: the same
// workload model then tells one story in both the simulated and the
// measured scaling curves.
func (w WorkloadModel) CalibrateFromMeasurement(stepSec float64, globalBatch int, chip Chip, round RoundConfig, modelBytes float64) WorkloadModel {
	if globalBatch > 0 && stepSec > 0 {
		w.FlopsPerSample = stepSec * chip.FlopsPerSec * round.SoftwareEfficiency / float64(globalBatch)
	}
	if modelBytes > 0 {
		w.ModelBytes = modelBytes
	}
	return w
}

// RoundConfig models what changes between submission rounds on fixed
// hardware (§5: "The two rounds were six months apart and the underlying
// hardware systems did not change").
type RoundConfig struct {
	Version string
	// SoftwareEfficiency multiplies sustained chip throughput: the stack
	// improvements ("incorporated into the underlying software
	// infrastructure and passed on to users").
	SoftwareEfficiency float64
	// TargetFactor multiplies epochs-to-target (raised quality targets:
	// >1 means more training work per run).
	TargetFactor float64
	// LargeBatchFactor multiplies CritBatch (rule changes such as
	// admitting LARS stretch the efficient-batch regime).
	LargeBatchFactor float64
	// MaxChips is the largest system entered that round.
	MaxChips int
}

// Rounds returns the two published rounds with calibrated deltas.
func Rounds() (v05, v06 RoundConfig) {
	v05 = RoundConfig{Version: "v0.5", SoftwareEfficiency: 1.0, TargetFactor: 1.0, LargeBatchFactor: 1.0, MaxChips: 384}
	// v0.6: ~6 months of stack optimization, higher targets, LARS-class
	// rule changes enabling much larger scale.
	v06 = RoundConfig{Version: "v0.6", SoftwareEfficiency: 1.42, TargetFactor: 1.10, LargeBatchFactor: 6.0, MaxChips: 4096}
	return v05, v06
}

// StepTime returns the simulated wall time of one training step at the
// given global batch on the system: per-chip compute plus a ring
// all-reduce of the gradient payload.
func StepTime(sys System, w WorkloadModel, round RoundConfig, globalBatch int) time.Duration {
	perChip := float64(globalBatch) / float64(sys.Chips)
	compute := perChip * w.FlopsPerSample / (sys.Chip.FlopsPerSec * round.SoftwareEfficiency)
	// Ring all-reduce: 2(p-1)/p of the payload crosses each link, plus a
	// latency term per ring step.
	p := float64(sys.Chips)
	comm := 0.0
	if sys.Chips > 1 {
		comm = 2*(p-1)/p*w.ModelBytes/sys.Network.BandwidthBytes +
			2*(p-1)*sys.Network.LatencySec
	}
	return time.Duration((compute + comm) * float64(time.Second))
}

// TimeToTrain simulates the full time-to-train on the system at the given
// global batch, applying the round's target factor and batch penalty.
func TimeToTrain(sys System, w WorkloadModel, round RoundConfig, globalBatch int) (time.Duration, error) {
	if globalBatch%sys.Chips != 0 {
		return 0, fmt.Errorf("cluster: global batch %d not divisible by %d chips", globalBatch, sys.Chips)
	}
	perChip := globalBatch / sys.Chips
	if perChip > w.MaxBatchPerChip {
		return 0, fmt.Errorf("cluster: per-chip batch %d exceeds memory bound %d", perChip, w.MaxBatchPerChip)
	}
	if perChip < w.MinBatchPerChip {
		return 0, fmt.Errorf("cluster: per-chip batch %d underutilizes the chip (min %d)", perChip, w.MinBatchPerChip)
	}
	critical := w.CritBatch * round.LargeBatchFactor
	epochs := w.BaseEpochs * (1 + float64(globalBatch)/critical) * round.TargetFactor
	steps := epochs * w.DatasetN / float64(globalBatch)
	return time.Duration(steps * float64(StepTime(sys, w, round, globalBatch))), nil
}

// BestBatch searches the feasible batch ladder for the fastest
// time-to-train on the system, returning the batch and its time. The ladder
// starts at MinBatchPerChip (clamped to 1: a zero or negative min would make
// the doubling sweep loop forever, since 0*2 == 0) and doubles up to
// MaxBatchPerChip; non-power-of-two bounds are fine.
func BestBatch(sys System, w WorkloadModel, round RoundConfig) (int, time.Duration, error) {
	if w.MaxBatchPerChip < 1 {
		return 0, 0, fmt.Errorf("cluster: workload %s has MaxBatchPerChip %d < 1", w.ID, w.MaxBatchPerChip)
	}
	minPerChip := w.MinBatchPerChip
	if minPerChip < 1 {
		minPerChip = 1
	}
	best := time.Duration(math.MaxInt64)
	bestBatch := 0
	for perChip := minPerChip; perChip <= w.MaxBatchPerChip; perChip *= 2 {
		b := perChip * sys.Chips
		t, err := TimeToTrain(sys, w, round, b)
		if err != nil {
			continue
		}
		if t < best {
			best, bestBatch = t, b
		}
	}
	if bestBatch == 0 {
		return 0, 0, fmt.Errorf("cluster: no feasible batch for %d chips", sys.Chips)
	}
	return bestBatch, best, nil
}

// BestScale sweeps system sizes (powers of two up to the round's MaxChips)
// and returns the configuration with the fastest overall score — the
// "fastest overall entry" of Figure 5.
func BestScale(chip Chip, net Interconnect, w WorkloadModel, round RoundConfig) (System, int, time.Duration) {
	bestSys := System{}
	bestBatch := 0
	bestT := time.Duration(math.MaxInt64)
	for chips := 1; chips <= round.MaxChips; chips *= 2 {
		sys := System{Name: fmt.Sprintf("sim-%dx", chips), Chips: chips, Chip: chip, Network: net}
		b, t, err := BestBatch(sys, w, round)
		if err != nil {
			continue
		}
		if t < bestT {
			bestSys, bestBatch, bestT = sys, b, t
		}
	}
	return bestSys, bestBatch, bestT
}

// ReferenceChip is the simulated accelerator both rounds run on (hardware
// held fixed across rounds, as in §5).
func ReferenceChip() Chip {
	return Chip{FlopsPerSec: 120e12, MemBytes: 16e9}
}

// ReferenceNetwork is the simulated interconnect.
func ReferenceNetwork() Interconnect {
	return Interconnect{BandwidthBytes: 25e9, LatencySec: 5e-6}
}

// WorkloadModels returns per-benchmark scaling models. Values are loosely
// derived from the public v0.5 benchmark characteristics (dataset sizes,
// model sizes, epochs-to-target) so the simulated figures land in the
// paper's regime.
func WorkloadModels() []WorkloadModel {
	return []WorkloadModel{
		{ID: "image_classification", DatasetN: 1.28e6, FlopsPerSample: 2.3e10,
			ModelBytes: 1.0e8, ActBytesPerSample: 3.2e6, BaseEpochs: 57, CritBatch: 35000,
			MaxBatchPerChip: 256, MinBatchPerChip: 4},
		{ID: "object_detection_ssd", DatasetN: 1.18e5, FlopsPerSample: 8.8e10,
			ModelBytes: 1.4e8, ActBytesPerSample: 4.6e6, BaseEpochs: 50, CritBatch: 9000,
			MaxBatchPerChip: 128, MinBatchPerChip: 2},
		{ID: "instance_segmentation_maskrcnn", DatasetN: 1.18e5, FlopsPerSample: 8.0e11,
			ModelBytes: 1.8e8, ActBytesPerSample: 8.0e6, BaseEpochs: 13, CritBatch: 1400,
			MaxBatchPerChip: 16, MinBatchPerChip: 1},
		{ID: "translation_gnmt", DatasetN: 4.5e6, FlopsPerSample: 4.0e10,
			ModelBytes: 6.5e8, ActBytesPerSample: 4.0e5, BaseEpochs: 5, CritBatch: 9000,
			MaxBatchPerChip: 128, MinBatchPerChip: 4},
		{ID: "translation_transformer", DatasetN: 4.5e6, FlopsPerSample: 2.0e10,
			ModelBytes: 8.4e8, ActBytesPerSample: 2.1e5, BaseEpochs: 7, CritBatch: 16000,
			MaxBatchPerChip: 256, MinBatchPerChip: 8},
		{ID: "recommendation", DatasetN: 2.0e7, FlopsPerSample: 4.0e7,
			ModelBytes: 5.0e8, ActBytesPerSample: 2.0e3, BaseEpochs: 13, CritBatch: 200000,
			MaxBatchPerChip: 16384, MinBatchPerChip: 256},
		{ID: "reinforcement_learning", DatasetN: 2.0e6, FlopsPerSample: 1.0e10,
			ModelBytes: 2.4e7, ActBytesPerSample: 2.6e4, BaseEpochs: 20, CritBatch: 7000,
			MaxBatchPerChip: 64, MinBatchPerChip: 1},
	}
}

// CloudScale computes the §4.2.3 cloud scale metric from host processors,
// host memory, and accelerator count/type weight. The paper derived it so
// it "correlates closely with cost across three major cloud providers".
func CloudScale(hostProcs int, hostMemGB float64, accels int, accelWeight float64) float64 {
	return float64(hostProcs) + hostMemGB/64 + float64(accels)*accelWeight
}
