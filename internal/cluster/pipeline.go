package cluster

import (
	"fmt"
	"math"
	"time"
)

// PipelineConfig models stage-partitioned (pipeline-parallel) execution:
// the model is split over Stages chips and every per-rank batch flows
// through them as Microbatches microbatches — the analytic counterpart of
// the executed engine in internal/pipeline.
type PipelineConfig struct {
	// Stages is the pipeline depth S (>= 1; 1 means pure data parallelism).
	Stages int
	// Microbatches is M, the per-rank microbatch count (>= 1).
	Microbatches int
}

// Bubble returns the fill-drain utilization factor (M + S − 1) / M: the
// pipeline executes M microbatches in M + S − 1 stage-slots, so compute
// time inflates by the (S−1)/M bubble both GPipe and 1F1B pay.
func (p PipelineConfig) Bubble() float64 {
	return float64(p.Microbatches+p.Stages-1) / float64(p.Microbatches)
}

// StepTimePipeline returns the simulated wall time of one training step at
// the given global batch on the system under hybrid DP×PP execution: the
// system's chips are partitioned into sys.Chips/S data-parallel ranks of S
// pipeline stages each. Per-step cost is bubble-inflated per-stage compute,
// plus the stage-group gradient ring (payload ModelBytes/S over dp
// members, the S group rings running concurrently), plus the boundary
// activation traffic crossing the S−1 stage gaps on the fill/drain
// critical path. At Stages = 1 it reduces exactly to StepTime.
func StepTimePipeline(sys System, w WorkloadModel, round RoundConfig, globalBatch int, pp PipelineConfig) (time.Duration, error) {
	if pp.Stages < 1 || pp.Microbatches < 1 {
		return 0, fmt.Errorf("cluster: invalid pipeline config %+v", pp)
	}
	if sys.Chips%pp.Stages != 0 {
		return 0, fmt.Errorf("cluster: %d chips not divisible by %d pipeline stages", sys.Chips, pp.Stages)
	}
	dp := sys.Chips / pp.Stages
	perRank := float64(globalBatch) / float64(dp)

	// Compute: each chip holds 1/S of the model; the schedule fills and
	// drains, inflating ideal time by the bubble.
	ideal := perRank * w.FlopsPerSample / (sys.Chip.FlopsPerSec * round.SoftwareEfficiency)
	compute := ideal / float64(pp.Stages) * pp.Bubble()

	comm := 0.0
	if dp > 1 {
		// Stage-group ring all-reduce: each of the S concurrent group
		// rings moves 1/S of the gradient payload over dp members.
		p := float64(dp)
		comm += 2*(p-1)/p*(w.ModelBytes/float64(pp.Stages))/sys.Network.BandwidthBytes +
			2*(p-1)*sys.Network.LatencySec
	}
	if pp.Stages > 1 {
		// Boundary activations: one microbatch payload crosses each of the
		// S−1 gaps during fill and again (as gradients) during drain.
		actPayload := perRank / float64(pp.Microbatches) * w.ActBytesPerSample
		comm += 2 * float64(pp.Stages-1) *
			(actPayload/sys.Network.BandwidthBytes + sys.Network.LatencySec)
	}
	return time.Duration((compute + comm) * float64(time.Second)), nil
}

// TimeToTrainPipeline simulates the full time-to-train under hybrid DP×PP,
// applying the round's target factor and large-batch penalty exactly as
// TimeToTrain. Pipeline parallelism is the lever that keeps scaling past
// the pure-DP concurrency wall: epochs-to-target depend on the global
// batch alone, and a rank's batch now spans S chips, so a system can grow
// S× larger at a FIXED global batch — more silicon per step without
// feeding the §2.2.2 large-batch penalty or dropping below the per-rank
// utilization floor, exactly the regime the TPU-pod companion papers
// scale in. The per-rank memory bound likewise spans the rank's S chips
// (perRank ≤ S·MaxBatchPerChip).
func TimeToTrainPipeline(sys System, w WorkloadModel, round RoundConfig, globalBatch int, pp PipelineConfig) (time.Duration, error) {
	if pp.Stages < 1 || pp.Microbatches < 1 {
		return 0, fmt.Errorf("cluster: invalid pipeline config %+v", pp)
	}
	if sys.Chips%pp.Stages != 0 {
		return 0, fmt.Errorf("cluster: %d chips not divisible by %d pipeline stages", sys.Chips, pp.Stages)
	}
	dp := sys.Chips / pp.Stages
	if globalBatch%dp != 0 {
		return 0, fmt.Errorf("cluster: global batch %d not divisible by %d pipeline ranks", globalBatch, dp)
	}
	perRank := globalBatch / dp
	if perRank > pp.Stages*w.MaxBatchPerChip {
		return 0, fmt.Errorf("cluster: per-rank batch %d exceeds pipelined memory bound %d", perRank, pp.Stages*w.MaxBatchPerChip)
	}
	if perRank < w.MinBatchPerChip {
		return 0, fmt.Errorf("cluster: per-rank batch %d underutilizes the pipeline (min %d)", perRank, w.MinBatchPerChip)
	}
	if perRank < pp.Microbatches {
		return 0, fmt.Errorf("cluster: per-rank batch %d smaller than %d microbatches", perRank, pp.Microbatches)
	}
	critical := w.CritBatch * round.LargeBatchFactor
	epochs := w.BaseEpochs * (1 + float64(globalBatch)/critical) * round.TargetFactor
	steps := epochs * w.DatasetN / float64(globalBatch)
	st, err := StepTimePipeline(sys, w, round, globalBatch, pp)
	if err != nil {
		return 0, err
	}
	return time.Duration(steps * float64(st)), nil
}

// BestBatchPipeline searches the feasible batch ladder for the fastest
// pipelined time-to-train on the system (the DP×PP analogue of BestBatch).
func BestBatchPipeline(sys System, w WorkloadModel, round RoundConfig, pp PipelineConfig) (int, time.Duration, error) {
	if w.MaxBatchPerChip < 1 {
		return 0, 0, fmt.Errorf("cluster: workload %s has MaxBatchPerChip %d < 1", w.ID, w.MaxBatchPerChip)
	}
	if pp.Stages < 1 || sys.Chips%pp.Stages != 0 {
		return 0, 0, fmt.Errorf("cluster: %d chips not divisible by %d pipeline stages", sys.Chips, pp.Stages)
	}
	dp := sys.Chips / pp.Stages
	minPerRank := w.MinBatchPerChip
	if minPerRank < 1 {
		minPerRank = 1
	}
	best := time.Duration(math.MaxInt64)
	bestBatch := 0
	for perRank := minPerRank; perRank <= pp.Stages*w.MaxBatchPerChip; perRank *= 2 {
		b := perRank * dp
		t, err := TimeToTrainPipeline(sys, w, round, b, pp)
		if err != nil {
			continue
		}
		if t < best {
			best, bestBatch = t, b
		}
	}
	if bestBatch == 0 {
		return 0, 0, fmt.Errorf("cluster: no feasible pipelined batch for %d chips at S=%d", sys.Chips, pp.Stages)
	}
	return bestBatch, best, nil
}

// FigurePPRow is one row of the pipeline-axis extension of Figures 4–5:
// for a fixed system size, the fastest pure-DP configuration versus the
// fastest hybrid DP×PP configuration (depth swept in powers of two).
type FigurePPRow struct {
	Benchmark   string
	DPTime      time.Duration // best pure data-parallel time-to-train
	BestStages  int           // pipeline depth of the best hybrid config
	BestMicro   int           // microbatch count of the best hybrid config
	HybridTime  time.Duration // best hybrid DP×PP time-to-train
	Speedup     float64       // DPTime / HybridTime (1.0 when PP doesn't help)
	HybridBatch int           // global batch of the best hybrid config
}

// FigurePP sweeps pipeline depths (powers of two up to maxStages, clamped
// to divisors of the system) and microbatch counts for every benchmark
// workload on a fixed system, quantifying when the (S−1)/M bubble is worth
// paying: workloads whose best pure-DP batch sits at the memory/large-batch
// wall gain, compute-bound small-model workloads do not.
func FigurePP(round RoundConfig, chips, maxStages int) []FigurePPRow {
	chip, net := ReferenceChip(), ReferenceNetwork()
	sys := System{Name: fmt.Sprintf("sim-%dx", chips), Chips: chips, Chip: chip, Network: net}
	var rows []FigurePPRow
	for _, w := range WorkloadModels() {
		_, dpTime, err := BestBatch(sys, w, round)
		if err != nil {
			continue
		}
		row := FigurePPRow{Benchmark: w.ID, DPTime: dpTime, BestStages: 1, BestMicro: 1, HybridTime: dpTime, Speedup: 1}
		for s := 2; s <= maxStages && s <= chips; s *= 2 {
			if chips%s != 0 {
				continue
			}
			for _, m := range []int{4, 8, 16, 32} {
				pp := PipelineConfig{Stages: s, Microbatches: m}
				b, t, err := BestBatchPipeline(sys, w, round, pp)
				if err != nil {
					continue
				}
				if t < row.HybridTime {
					row.BestStages, row.BestMicro = s, m
					row.HybridTime, row.HybridBatch = t, b
					row.Speedup = float64(dpTime) / float64(t)
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}
