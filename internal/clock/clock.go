// Package clock is the repo's single source of wall time. The Clock
// interface abstracts the run clock so the timing rules of §3.2.1 can be
// enforced and tested: the real clock drives actual training, while the
// tick and simulated clocks drive rule tests, the cluster-scale studies,
// and deterministic step-time accounting in the dist/pipeline engines.
//
// Everything above this package takes a Clock; the detlint analyzer
// (internal/analysis) mechanically forbids time.Now outside this package,
// so no training-path code can read the wall clock behind the
// abstraction's back and break run-to-run determinism.
package clock

import "time"

// Clock abstracts the run clock.
type Clock interface {
	// Now returns elapsed time since the clock's origin.
	Now() time.Duration
}

// After returns the wall-clock instant d from now — the absolute-deadline
// form net.Conn's Set*Deadline methods require. It lives here because
// detlint forbids time.Now outside this package: transport deadline math
// routes through After, keeping the wall clock out of engine code while
// still letting the TCP backend arm real I/O deadlines (deadlines bound
// failure detection; they never feed results or timing metrics).
func After(d time.Duration) time.Time { return time.Now().Add(d) }

// Real measures wall time from its creation.
type Real struct{ start time.Time }

// NewReal starts a wall clock.
func NewReal() *Real { return &Real{start: time.Now()} }

// Now implements Clock.
func (c *Real) Now() time.Duration { return time.Since(c.start) }

// Tick advances by a fixed tick on every Now call. Because a run reads
// the clock a schedule-independent number of times, Tick makes
// TimeToTrain a pure function of the run's work — the deterministic
// timing source the concurrent run-set executor is tested against.
type Tick struct {
	t    time.Duration
	tick time.Duration
}

// NewTick returns a clock advancing by tick per reading.
func NewTick(tick time.Duration) *Tick { return &Tick{tick: tick} }

// Now implements Clock.
func (c *Tick) Now() time.Duration {
	c.t += c.tick
	return c.t
}

// Sim is a manually advanced clock. The zero value reads zero.
type Sim struct{ t time.Duration }

// Now implements Clock.
func (c *Sim) Now() time.Duration { return c.t }

// Advance moves the clock forward.
func (c *Sim) Advance(d time.Duration) { c.t += d }
