// Package leakcheck asserts that a test leaves no goroutines behind — the
// audit tool for engine Close and transport teardown paths, where a dead
// peer mid-step must not strand stage or reader goroutines.
package leakcheck

import (
	"runtime"
	"strings"
	"time"

	"repro/internal/clock"
)

// ignored matches goroutines outside a test's control: the runtime's own
// helpers and the testing harness.
var ignored = []string{
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.runTests",
	"testing.tRunner",
	"runtime.goexit",
	"created by runtime",
	"signal.signal_recv",
	"runtime/trace",
	"repro/internal/parallel.", // the process-wide kernel worker pool
}

func interesting(stack string) bool {
	if stack == "" {
		return false
	}
	for _, p := range ignored {
		if strings.Contains(stack, p) {
			return false
		}
	}
	return true
}

// stacks returns the stack dumps of all live interesting goroutines.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if interesting(g) {
			out = append(out, g)
		}
	}
	return out
}

// goID extracts the "goroutine N" header. Goroutine IDs are never reused
// within a process, so the snapshot tracks identity, not stack text (a
// draining goroutine's stack changes as it exits).
func goID(stack string) string {
	if i := strings.Index(stack, " ["); i > 0 {
		return stack[:i]
	}
	return stack
}

// TB is the testing.TB slice leakcheck needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check snapshots the live goroutines and returns a function that fails the
// test if goroutines born after the snapshot are still alive. Teardown is
// usually asynchronous (readers notice closed connections, stage goroutines
// drain), so the assertion retries for up to five seconds before reporting.
//
//	defer leakcheck.Check(t)()
func Check(t TB) func() {
	before := map[string]bool{}
	for _, g := range stacks() {
		before[goID(g)] = true
	}
	return func() {
		t.Helper()
		clk := clock.NewReal()
		deadline := clk.Now() + 5*time.Second
		var leaked []string
		for {
			leaked = leaked[:0]
			for _, g := range stacks() {
				if !before[goID(g)] {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 || clk.Now() > deadline {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine:\n%s", g)
		}
	}
}

// Count returns the number of interesting live goroutines.
func Count() int { return len(stacks()) }
