// Quickstart: train one MLPerf benchmark (NCF recommendation) to its
// quality target under the official timing rules, then print the
// time-to-train result and an excerpt of the MLLOG structured log.
package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

func main() {
	bench, err := core.FindBenchmark(core.V05, "recommendation")
	if err != nil {
		panic(err)
	}
	fmt.Printf("MLPerf Training quickstart: %s\n", bench.Task)
	fmt.Printf("  dataset: %s\n  model:   %s\n  target:  %.3f %s\n\n",
		bench.Dataset, bench.Model, bench.Target, bench.QualityMetric)

	result := core.Run(bench, core.RunConfig{Seed: 7})
	fmt.Println(result.String())
	fmt.Printf("quality curve: ")
	for _, q := range result.QualityCurve {
		fmt.Printf("%.3f ", q)
	}
	fmt.Println()

	fmt.Println("\nMLLOG excerpt:")
	lines := strings.Split(strings.TrimSpace(result.Log.String()), "\n")
	for i, line := range lines {
		if i < 4 || i >= len(lines)-3 {
			fmt.Println(" ", line)
		} else if i == 4 {
			fmt.Printf("  ... (%d more events) ...\n", len(lines)-7)
		}
	}
}
