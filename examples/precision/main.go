// Precision study (Figure 1): train the image classifier with different
// simulated weight representations and plot validation error vs. epoch.
// As in the paper, low-precision curves separate from full precision only
// after several epochs, and the most aggressive formats never close the
// gap — demonstrating why ML benchmarks cannot omit accuracy (§2.2.1).
package main

import (
	"flag"
	"fmt"

	"repro/internal/datasets"
	"repro/internal/models"
	"repro/internal/precision"
)

func main() {
	epochs := flag.Int("epochs", 10, "training epochs per format")
	flag.Parse()

	ds := datasets.GenerateImages(datasets.DefaultImageConfig())
	formats := []precision.Format{
		precision.FP64, precision.FP32, precision.FP16,
		precision.BF16, precision.Fixed8, precision.Ternary,
	}

	curves := make(map[precision.Format][]float64)
	for _, f := range formats {
		hp := models.DefaultImageHParams()
		hp.Precision = precision.WeightsOnly(f)
		w := models.NewImageClassification(ds, hp, 11)
		var errs []float64
		for e := 0; e < *epochs; e++ {
			w.TrainEpoch()
			errs = append(errs, w.ValError())
		}
		curves[f] = errs
		fmt.Printf("%-8s trained\n", f)
	}

	fmt.Printf("\nvalidation error by epoch (Figure 1 style):\n%-8s", "epoch")
	for _, f := range formats {
		fmt.Printf("%10s", f.String())
	}
	fmt.Println()
	for e := 0; e < *epochs; e++ {
		fmt.Printf("%-8d", e+1)
		for _, f := range formats {
			fmt.Printf("%10.3f", curves[f][e])
		}
		fmt.Println()
	}

	final := func(f precision.Format) float64 { return curves[f][*epochs-1] }
	fmt.Printf("\nfinal error gap vs fp64: fp32 %+.3f, fp16 %+.3f, bf16 %+.3f, fixed8 %+.3f, ternary %+.3f\n",
		final(precision.FP32)-final(precision.FP64),
		final(precision.FP16)-final(precision.FP64),
		final(precision.BF16)-final(precision.FP64),
		final(precision.Fixed8)-final(precision.FP64),
		final(precision.Ternary)-final(precision.FP64))
}
