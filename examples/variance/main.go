// Variance study (Figures 2 and 3): run-to-run variation of epochs to
// reach the quality target for NCF and MiniGo across seeds (Figure 2), and
// the noisy early-epoch accuracy curves of ResNet across 5 seeds
// (Figure 3). Each repetition varies only the random seed, as in §2.2.3.
//
// Usage:
//
//	go run ./examples/variance -bench ncf -seeds 8
//	go run ./examples/variance -bench resnet -curves
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/core"
)

func main() {
	bench := flag.String("bench", "ncf", "ncf | minigo | resnet")
	seeds := flag.Int("seeds", 5, "number of runs (seeds 1..N)")
	curves := flag.Bool("curves", false, "print per-epoch quality curves (Figure 3 style)")
	flag.Parse()

	id := map[string]string{
		"ncf":    "recommendation",
		"minigo": "reinforcement_learning",
		"resnet": "image_classification",
	}[*bench]
	if id == "" {
		fmt.Println("unknown -bench; use ncf, minigo, or resnet")
		return
	}
	b, err := core.FindBenchmark(core.V05, id)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%s: %d runs with identical hyperparameters except the random seed\n", b.Task, *seeds)
	fmt.Printf("quality target: %.4g %s\n\n", b.Target, b.QualityMetric)

	var epochs []int
	for s := 1; s <= *seeds; s++ {
		r := core.Run(b, core.RunConfig{Seed: uint64(s)})
		status := fmt.Sprintf("reached target in %d epochs", r.Epochs)
		if !r.Converged {
			status = "did not converge within the epoch cap"
		}
		fmt.Printf("seed %d: %s (final quality %.4f)\n", s, status, r.FinalQuality)
		if *curves {
			fmt.Print("  curve: ")
			for _, q := range r.QualityCurve {
				fmt.Printf("%.3f ", q)
			}
			fmt.Println()
		}
		if r.Converged {
			epochs = append(epochs, r.Epochs)
		}
	}

	if len(epochs) > 0 {
		fmt.Println("\nepochs-to-target histogram (Figure 2 style):")
		counts := map[int]int{}
		lo, hi := epochs[0], epochs[0]
		for _, e := range epochs {
			counts[e]++
			if e < lo {
				lo = e
			}
			if e > hi {
				hi = e
			}
		}
		for e := lo; e <= hi; e++ {
			fmt.Printf("  %3d epochs | %s\n", e, strings.Repeat("#", counts[e]))
		}
	}
}
