// Submission round: a full §4 benchmarking process end to end. Two
// organizations submit NCF results — one Closed-division entry that follows
// the rules, one whose hyperparameters violate the linear-scaling rule —
// then review runs, one submitter borrows hyperparameters and resubmits,
// and the per-benchmark results report is published (with, deliberately,
// no summary score; §4.2.4).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/submission"
)

func run(benchID string, seeds []uint64) core.ResultSet {
	b, err := core.FindBenchmark(core.V05, benchID)
	if err != nil {
		panic(err)
	}
	rs := core.ResultSet{Benchmark: benchID}
	for _, s := range seeds {
		r := core.Run(b, core.RunConfig{Seed: s})
		if err := rs.AddRun(r); err != nil {
			panic(err)
		}
	}
	return rs
}

func main() {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	fmt.Println("running 10 timed NCF sessions for each submitter (§3.2.2)...")
	results := run("recommendation", seeds)

	good := &submission.Submission{
		Org: "acme", Version: core.V05, Division: core.Closed,
		Category: submission.Available, CodeURL: "https://example.com/acme-mlperf",
		System: submission.SystemDescription{
			Name: "acme-pod", Org: "acme", Nodes: 1, Processors: 2,
			Accelerators: 8, AcceleratorType: "sim-chip", Type: submission.OnPremise,
			OS: "linux", Framework: "repro-go",
		},
		Entries: []submission.BenchmarkEntry{{
			Benchmark: "recommendation", Results: results,
			Batch: 64, RefBatch: 64,
			HParams: []core.HParamChoice{
				{Name: "batch_size", Value: 64, Reference: 64},
				{Name: "learning_rate", Value: 0.002, Reference: 0.002},
			},
		}},
	}

	bad := &submission.Submission{
		Org: "cutcorners", Version: core.V05, Division: core.Closed,
		Category: submission.Preview, CodeURL: "https://example.com/cutcorners",
		System: submission.SystemDescription{
			Name: "cc-cloud", Org: "cutcorners", Nodes: 2, Processors: 16,
			Accelerators: 16, AcceleratorType: "sim-chip", Type: submission.Cloud,
			HostMemGB: 512, AccelWeight: 4,
		},
		Entries: []submission.BenchmarkEntry{{
			Benchmark: "recommendation", Results: results,
			Batch: 256, RefBatch: 64,
			HParams: []core.HParamChoice{
				{Name: "batch_size", Value: 256, Reference: 64},
				// 4x batch requires ~4x learning rate under the linear
				// scaling rule; keeping 0.002 while quadrupling the batch
				// is flagged... and so is touching a frozen knob:
				{Name: "learning_rate", Value: 0.02, Reference: 0.002},
				{Name: "weight_initialization", Value: 2, Reference: 1},
			},
		}},
	}

	fmt.Println("\n--- peer review (§4.1) ---")
	for _, sub := range []*submission.Submission{good, bad} {
		violations := submission.Review(sub)
		fmt.Printf("%s: %d violation(s)\n", sub.Org, len(violations))
		for _, v := range violations {
			fmt.Printf("  [%s] %s\n", v.Benchmark, v.Message)
		}
	}

	fmt.Println("\n--- hyperparameter borrowing during review (§4.1) ---")
	if err := submission.BorrowHyperparams(bad, good, "recommendation"); err != nil {
		panic(err)
	}
	fmt.Printf("cutcorners adopts acme's hyperparameters and resubmits: %d violation(s)\n",
		len(submission.Review(bad)))

	fmt.Println("\n--- published results (per-benchmark; no summary score, §4.2.4) ---")
	fmt.Print(submission.FormatReport(submission.BuildReport([]*submission.Submission{good, bad})))
}
