// Scaling study (Figures 4 and 5): simulate the v0.5 and v0.6 submission
// rounds on fixed hardware. Round-over-round software-stack efficiency,
// raised quality targets, and large-batch rule changes (LARS) drive both
// the 16-chip speedups of Figure 4 and the scale-out movement of Figure 5.
//
// With -measured, the study additionally runs the REAL data-parallel engine
// (internal/dist) at 1/2/4/8 workers and reports measured per-step times
// and ring-all-reduce traffic alongside the analytic model — and calibrates
// the analytic workload model against the measurement, so the simulated
// figures and the executed engine tell one story.
//
// With -pp, it runs the REAL pipeline-parallel engine (internal/pipeline)
// on the ResNet workload — serial vs DP×4 vs PP×4 (both schedules) vs a
// 2×2 hybrid, all training bit-identically at a pinned microbatch count —
// and prints the analytic pipeline axis (bubble model + FigurePP sweep)
// alongside the measurements.
//
// Usage:
//
//	go run ./examples/scaling            # both figures
//	go run ./examples/scaling -figure 4
//	go run ./examples/scaling -measured  # measured multi-worker step times
//	go run ./examples/scaling -pp        # measured DP vs PP vs hybrid + pipeline axis
package main

import (
	"flag"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/transport"
)

func main() {
	figure := flag.Int("figure", 0, "4, 5, or 0 for both")
	measured := flag.Bool("measured", false, "also run the real internal/dist engine at 1/2/4/8 workers and report measured scaling")
	pp := flag.Bool("pp", false, "also run the real internal/pipeline engine: serial vs DP4 vs PP4 vs 2x2 hybrid ResNet step times, plus the analytic pipeline axis")
	steps := flag.Int("steps", 30, "measured steps per worker count (with -measured / -pp)")
	batch := flag.Int("batch", 256, "global batch for the measured engine (with -measured)")
	ppBatch := flag.Int("pp-batch", 64, "global batch for the measured pipeline engine (with -pp)")
	flag.Parse()

	if *figure == 0 || *figure == 4 {
		rows := cluster.Figure4()
		fmt.Println("Figure 4: speedup of the fastest 16-chip entry from v0.5 to v0.6")
		fmt.Println("(quality targets raised in v0.6, as in the paper)")
		for _, r := range rows {
			bars := int(r.Speedup * 20)
			fmt.Printf("  %-32s %.2fx %s\n", r.Benchmark, r.Speedup, strings.Repeat("█", bars))
		}
		fmt.Printf("  geometric mean: %.2fx (paper reports an average of 1.3x)\n\n", cluster.GeoMeanSpeedup(rows))
	}
	if *figure == 0 || *figure == 5 {
		rows := cluster.Figure5()
		fmt.Println("Figure 5: chips in the system with the fastest overall score")
		for _, r := range rows {
			fmt.Printf("  %-32s v0.5: %4d chips (%s)   v0.6: %4d chips (%s)   %.1fx\n",
				r.Benchmark, r.V05Chips, cluster.FormatDuration(r.V05Time),
				r.V06Chips, cluster.FormatDuration(r.V06Time), r.Increase)
		}
		fmt.Printf("  geometric mean increase: %.1fx (paper reports an average of 5.5x)\n", cluster.GeoMeanIncrease(rows))
	}
	if *measured {
		runMeasured(*steps, *batch)
	}
	if *pp {
		runPPMeasured(*steps, *ppBatch)
	}
}

// runPPMeasured trains the ResNet workload under every parallelism layout
// at a fixed global batch and a pinned microbatch count, so every
// configuration performs bit-identical training and the only variable is
// how the work is spread over goroutines: pure data parallelism
// (internal/dist), pure pipeline parallelism under both schedules, and a
// 2×2 hybrid (internal/pipeline). The tensor-kernel pool is pinned to one
// worker, so the engines are the only source of parallelism.
func runPPMeasured(steps, batch int) {
	ds := datasets.GenerateImages(datasets.DefaultImageConfig())
	hp := models.DefaultImageHParams()
	const micro = 8
	const seed = 1

	oldWorkers := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(oldWorkers)

	fmt.Printf("\nMeasured DP vs PP vs hybrid: ResNet on internal/dist + internal/pipeline\n")
	fmt.Printf("(global batch %d, %d microbatches, %d steps per point, serial kernels, %d core(s) available;\n"+
		" all layouts train bit-identically — speedup requires spare cores)\n",
		batch, micro, steps, runtime.GOMAXPROCS(0))

	distStep := func(workers int) time.Duration {
		var reps []*models.ImageClassification
		eng, err := dist.New(dist.Config{
			Endpoint:    transport.Endpoint{Workers: workers},
			Microshards: micro,
			GlobalBatch: batch, DatasetN: ds.Cfg.TrainN, Seed: seed,
		}, func(worker int) dist.Replica {
			m := models.NewImageClassification(ds, hp, seed)
			reps = append(reps, m)
			return dist.Replica{Model: m, Opt: m.Opt}
		})
		if err != nil {
			panic(err)
		}
		defer eng.Close()
		eng.SetSchedule(reps[0].Sched)
		for s := 0; s < steps; s++ {
			eng.StepNext()
		}
		return eng.Stats().StepTime / time.Duration(steps)
	}
	pipeStep := func(stages, workers int, sched pipeline.Schedule) (time.Duration, pipeline.Stats) {
		var reps []*models.ImageClassification
		eng, err := pipeline.New(pipeline.Config{
			Endpoint: transport.Endpoint{Workers: workers},
			Stages:   stages, Microbatches: micro, Schedule: sched,
			GlobalBatch: batch, DatasetN: ds.Cfg.TrainN, Seed: seed,
		}, func(worker int) []pipeline.StageReplica {
			m := models.NewImageClassification(ds, hp, seed)
			reps = append(reps, m)
			parts, err := m.PipelineStages(stages)
			if err != nil {
				panic(err)
			}
			return pipeline.Wrap(parts)
		})
		if err != nil {
			panic(err)
		}
		defer eng.Close()
		eng.SetLRSchedule(reps[0].Sched)
		for s := 0; s < steps; s++ {
			eng.StepNext()
		}
		st := eng.Stats()
		return st.StepTime / time.Duration(steps), st
	}

	serial := distStep(1)
	fmt.Printf("  %-22s %10s/step   speedup %.2fx\n", "serial", serial.Round(time.Microsecond), 1.0)
	dp4 := distStep(4)
	fmt.Printf("  %-22s %10s/step   speedup %.2fx\n", "DP×4", dp4.Round(time.Microsecond), float64(serial)/float64(dp4))
	for _, sched := range []pipeline.Schedule{pipeline.GPipe, pipeline.OneFOneB} {
		t, st := pipeStep(4, 1, sched)
		fmt.Printf("  %-22s %10s/step   speedup %.2fx   activations %6.1f KiB/step\n",
			"PP×4 ("+string(sched)+")", t.Round(time.Microsecond), float64(serial)/float64(t),
			float64(st.ActivationBytes)/float64(st.Steps)/1024)
	}
	t22, st22 := pipeStep(2, 2, pipeline.OneFOneB)
	fmt.Printf("  %-22s %10s/step   speedup %.2fx   activations %6.1f KiB/step   ring %6.1f KiB/step\n",
		"hybrid DP×2 PP×2", t22.Round(time.Microsecond), float64(serial)/float64(t22),
		float64(st22.ActivationBytes)/float64(st22.Steps)/1024,
		float64(st22.RingBytes)/float64(st22.Steps)/1024)

	// Analytic pipeline axis: the bubble model at the measured shapes, and
	// the FigurePP sweep showing where a pipeline depth pays off at scale.
	_, v06 := cluster.Rounds()
	fmt.Printf("\nAnalytic fill-drain inflation (M+S-1)/M, i.e. 1 + the (S-1)/M bubble: ")
	for _, s := range []int{1, 2, 4} {
		fmt.Printf("S=%d: %.3fx  ", s, cluster.PipelineConfig{Stages: s, Microbatches: micro}.Bubble())
	}
	fmt.Println()
	fmt.Println("\nFigure 5 with a pipeline axis (v0.6 rules, 4096 chips, depth swept 1..8):")
	for _, r := range cluster.FigurePP(v06, 4096, 8) {
		layout := "pure DP"
		if r.BestStages > 1 {
			layout = fmt.Sprintf("DP×%d PP×%d (M=%d)", 4096/r.BestStages, r.BestStages, r.BestMicro)
		}
		fmt.Printf("  %-32s best %-22s %8s (pure DP %8s, %.2fx)\n",
			r.Benchmark, layout, cluster.FormatDuration(r.HybridTime), cluster.FormatDuration(r.DPTime), r.Speedup)
	}
}

// runMeasured trains the NCF recommendation model on the internal/dist
// engine at increasing worker counts, at a fixed global batch and fixed
// microshard count, so every configuration performs bit-identical training
// and the only variable is parallel execution. The tensor-kernel pool is
// pinned to one worker for the duration, so the data-parallel workers are
// the experiment's only source of parallelism.
func runMeasured(steps, batch int) {
	ds := datasets.GenerateRec(datasets.DefaultRecConfig())
	hp := models.DefaultNCFHParams()
	const microshards = 8
	const seed = 1

	oldWorkers := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(oldWorkers)

	fmt.Printf("\nMeasured data-parallel scaling: NCF on internal/dist\n")
	fmt.Printf("(global batch %d, %d microshards, %d steps per point, serial kernels, %d core(s) available;\n"+
		" all points train bit-identically — speedup requires spare cores)\n",
		batch, microshards, steps, runtime.GOMAXPROCS(0))

	var basePerStep time.Duration
	var flatBytes int
	for _, k := range []int{1, 2, 4, 8} {
		eng, err := dist.New(dist.Config{
			Endpoint:    transport.Endpoint{Workers: k},
			Microshards: microshards,
			GlobalBatch: batch, DatasetN: len(ds.Train), Seed: seed,
		}, func(worker int) dist.Replica {
			m := models.NewRecommendation(ds, hp, seed)
			return dist.Replica{Model: m, Opt: m.Opt}
		})
		if err != nil {
			panic(err)
		}
		for s := 0; s < steps; s++ {
			eng.StepNext()
		}
		st := eng.Stats()
		perStep := st.StepTime / time.Duration(steps)
		if k == 1 {
			basePerStep = perStep
			flatBytes = eng.FlatSize() * 8
		}
		speedup := float64(basePerStep) / float64(perStep)
		fmt.Printf("  workers %d: %10s/step   speedup %.2fx   ring traffic %6.1f KiB/step\n",
			k, perStep.Round(time.Microsecond), speedup,
			float64(st.RingBytes)/float64(st.Steps)/1024)
		eng.Close()
	}

	// Calibrate the analytic Figure-4/5 workload model against the measured
	// serial step time and the real gradient payload.
	for _, w := range cluster.WorkloadModels() {
		if w.ID != "recommendation" {
			continue
		}
		v05, _ := cluster.Rounds()
		cal := w.CalibrateFromMeasurement(basePerStep.Seconds(), batch, cluster.ReferenceChip(), v05, float64(flatBytes))
		fmt.Printf("\nAnalytic model calibrated to the measurement:\n")
		fmt.Printf("  FlopsPerSample %.3g (was %.3g), ModelBytes %.3g (was %.3g)\n",
			cal.FlopsPerSample, w.FlopsPerSample, cal.ModelBytes, w.ModelBytes)
		for _, chips := range []int{1, 2, 4, 8} {
			sys := cluster.System{Name: fmt.Sprintf("sim-%dx", chips), Chips: chips,
				Chip: cluster.ReferenceChip(), Network: cluster.ReferenceNetwork()}
			t := cluster.StepTime(sys, cal, v05, batch)
			fmt.Printf("  analytic step time at %d chips: %s\n", chips, t.Round(time.Nanosecond))
		}
	}
}
