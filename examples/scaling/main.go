// Scaling study (Figures 4 and 5): simulate the v0.5 and v0.6 submission
// rounds on fixed hardware. Round-over-round software-stack efficiency,
// raised quality targets, and large-batch rule changes (LARS) drive both
// the 16-chip speedups of Figure 4 and the scale-out movement of Figure 5.
//
// Usage:
//
//	go run ./examples/scaling            # both figures
//	go run ./examples/scaling -figure 4
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/cluster"
)

func main() {
	figure := flag.Int("figure", 0, "4, 5, or 0 for both")
	flag.Parse()

	if *figure == 0 || *figure == 4 {
		rows := cluster.Figure4()
		fmt.Println("Figure 4: speedup of the fastest 16-chip entry from v0.5 to v0.6")
		fmt.Println("(quality targets raised in v0.6, as in the paper)")
		for _, r := range rows {
			bars := int(r.Speedup * 20)
			fmt.Printf("  %-32s %.2fx %s\n", r.Benchmark, r.Speedup, strings.Repeat("█", bars))
		}
		fmt.Printf("  geometric mean: %.2fx (paper reports an average of 1.3x)\n\n", cluster.GeoMeanSpeedup(rows))
	}
	if *figure == 0 || *figure == 5 {
		rows := cluster.Figure5()
		fmt.Println("Figure 5: chips in the system with the fastest overall score")
		for _, r := range rows {
			fmt.Printf("  %-32s v0.5: %4d chips (%s)   v0.6: %4d chips (%s)   %.1fx\n",
				r.Benchmark, r.V05Chips, cluster.FormatDuration(r.V05Time),
				r.V06Chips, cluster.FormatDuration(r.V06Time), r.Increase)
		}
		fmt.Printf("  geometric mean increase: %.1fx (paper reports an average of 5.5x)\n", cluster.GeoMeanIncrease(rows))
	}
}
