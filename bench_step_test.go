package repro

import (
	"runtime"
	"testing"

	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/transport"
)

// Steady-state allocation benchmarks: after a short warmup, a training
// step must perform ZERO heap allocations — the tensor arena, the pooled
// autograd tape, the persistent dist workers, and the reused batch buffers
// together keep GC entirely out of the hot loop, so step time stays flat
// no matter how long training runs (the time-to-train property §3.2
// measures). CI's bench-smoke job greps these benchmarks' -benchmem output
// and fails on any nonzero allocs/op.
//
// The kernel pool is pinned to 1 worker: parallelism comes from the
// persistent data-parallel workers (which allocate nothing per step), while
// a forked kernel loop would pay one goroutine spawn per fork. DropLast
// keeps every global batch full-size so warm tape slots never resize.

const stepAllocsWarmup = 6

func benchStepAllocsNCF(b *testing.B, workers int) {
	withPoolWorkers(b, 1)
	ds := datasets.GenerateRec(datasets.DefaultRecConfig())
	hp := models.DefaultNCFHParams()
	eng, err := dist.New(dist.Config{
		Endpoint:    transport.Endpoint{Workers: workers},
		Microshards: 8,
		GlobalBatch: 256, DatasetN: len(ds.Train), Seed: 1, DropLast: true,
	}, func(worker int) dist.Replica {
		m := models.NewRecommendation(ds, hp, 1)
		return dist.Replica{Model: m, Opt: m.Opt}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close) // not deferred: the timer only stops after this function returns, and Close's arena Puts would be timed
	for i := 0; i < stepAllocsWarmup; i++ {
		eng.StepNext()
	}
	// Setup allocated megabytes (dataset, replicas); collect that debris
	// now so a GC cycle's own bookkeeping cannot land inside the timed
	// region. Once warm the loop allocates nothing, so no further GC can
	// trigger — that is the property under test.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.StepNext()
	}
}

func benchStepAllocsResNet(b *testing.B, workers int) {
	withPoolWorkers(b, 1)
	ds := datasets.GenerateImages(datasets.DefaultImageConfig())
	hp := models.DefaultImageHParams()
	eng, err := dist.New(dist.Config{
		Endpoint:    transport.Endpoint{Workers: workers},
		Microshards: 8,
		GlobalBatch: hp.Batch, DatasetN: ds.Cfg.TrainN, Seed: 1, DropLast: true,
	}, func(worker int) dist.Replica {
		m := models.NewImageClassification(ds, hp, 1)
		return dist.Replica{Model: m, Opt: m.Opt}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close) // not deferred: the timer only stops after this function returns, and Close's arena Puts would be timed
	for i := 0; i < stepAllocsWarmup; i++ {
		eng.StepNext()
	}
	runtime.GC() // see benchStepAllocsNCF
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.StepNext()
	}
}

func BenchmarkStepAllocsNCF(b *testing.B)       { benchStepAllocsNCF(b, 1) }
func BenchmarkStepAllocsNCFDP4(b *testing.B)    { benchStepAllocsNCF(b, 4) }
func BenchmarkStepAllocsResNet(b *testing.B)    { benchStepAllocsResNet(b, 1) }
func BenchmarkStepAllocsResNetDP4(b *testing.B) { benchStepAllocsResNet(b, 4) }

// benchStepPipeline drives the pipeline-parallel engine (internal/pipeline)
// through warm ResNet steps. Like the dist benchmarks above, the warm step
// must report 0 allocs/op — the per-slot pooled tapes, boundary-transfer
// cells, and stage-group rings keep GC out of the pipelined hot loop too.
// CI's bench-smoke job greps BenchmarkStepPipeline* alongside
// BenchmarkStepAllocs*.
func benchStepPipeline(b *testing.B, stages, workers int, sched pipeline.Schedule) {
	withPoolWorkers(b, 1)
	ds := datasets.GenerateImages(datasets.DefaultImageConfig())
	hp := models.DefaultImageHParams()
	var reps []*models.ImageClassification
	eng, err := pipeline.New(pipeline.Config{
		Endpoint: transport.Endpoint{Workers: workers},
		Stages:   stages, Microbatches: 4, Schedule: sched,
		GlobalBatch: hp.Batch, DatasetN: ds.Cfg.TrainN, Seed: 1, DropLast: true,
	}, func(worker int) []pipeline.StageReplica {
		m := models.NewImageClassification(ds, hp, 1)
		reps = append(reps, m)
		parts, err := m.PipelineStages(stages)
		if err != nil {
			b.Fatal(err)
		}
		return pipeline.Wrap(parts)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close) // not deferred: see benchStepAllocsNCF
	eng.SetLRSchedule(reps[0].Sched)
	for i := 0; i < stepAllocsWarmup; i++ {
		eng.StepNext()
	}
	runtime.GC() // see benchStepAllocsNCF
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.StepNext()
	}
}

func BenchmarkStepPipelineResNetPP4(b *testing.B) { benchStepPipeline(b, 4, 1, pipeline.GPipe) }
func BenchmarkStepPipelineResNetPP41F1B(b *testing.B) {
	benchStepPipeline(b, 4, 1, pipeline.OneFOneB)
}
func BenchmarkStepPipelineResNetHybrid2x2(b *testing.B) {
	benchStepPipeline(b, 2, 2, pipeline.OneFOneB)
}
