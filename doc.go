// Package repro is a from-scratch Go reproduction of "MLPerf Training
// Benchmark" (Mattson et al., MLSys 2020): the benchmark suite of Table 1,
// the time-to-train measurement methodology with its timing rules, the
// submission/review process, and every evaluation artifact in the paper.
//
// The package tree:
//
//	internal/core       — suite, runner, timing rules, aggregation (the
//	                      paper's contribution); two-regime verification:
//	                      the fp64 stack is gated bitwise, reduced
//	                      numerics are gated by StatCheck, the §3.3
//	                      epochs-to-quality quantile comparison over
//	                      paired run sets. TrainConfig + Configure is the
//	                      one run-configuration surface (topology ×
//	                      numerics × transport); the per-axis constructors
//	                      (DPBenchmark, PPBenchmark, NumericsBenchmark,
//	                      ...) are deprecated delegates. Run surfaces
//	                      sticky engine failures as RunResult.Err
//	internal/parallel   — worker pool + sharded loops and 2-D tile loops
//	                      (ForTiles: row×column output tiles, so skinny and
//	                      short matrices keep every worker busy;
//	                      deterministic parallel substrate)
//	internal/arena      — generic size-bucketed buffer pool (float64 and
//	                      float32 element types) with per-worker free
//	                      lists; backs the allocation-free steady-state
//	                      training step (0 allocs/op after warmup) and the
//	                      GEMM pack buffers (GetRaw)
//	internal/tensor     — dense tensors + deterministic RNG; blocked,
//	                      packed, register-tiled GEMM engines (gemm.go/
//	                      gemm32.go: GotoBLAS-style MC×KC×NC blocking;
//	                      AVX2 4×8 f64 and 8×8 f32 micro-kernels with
//	                      portable fallbacks, bit-identical to the naive
//	                      reference kernels); F32 storage + bf16 rounding
//	internal/autograd   — tape-based reverse-mode autodiff (pooled, replayable
//	                      tapes: Reset + slot reuse keep warm steps alloc-free;
//	                      per-tape compute dtype stages MatMul operands in
//	                      f32/bf16, BackwardScaled seeds the loss scale)
//	internal/nn         — layer library (conv, BN, LSTM, attention, ...)
//	internal/opt        — SGD (both §2.2.4 momentum forms), Adam, LARS, schedules;
//	                      GradScaled lets mixed precision divide the loss
//	                      scale out inside the update loop
//	internal/precision  — simulated numeric formats (Figure 1) and the
//	                      mixed-precision trainer: bf16 master-weight
//	                      rounds, fp32/fp64 accumulation, dynamic loss
//	                      scaling (power-of-two scales, exact unscale)
//	internal/data       — input pipeline + §3.2.1 stage rules
//	internal/datasets   — synthetic stand-ins for ImageNet/COCO/WMT/MovieLens
//	internal/metrics    — top-1, mAP, BLEU, HR@10, move match
//	internal/models     — the 7 benchmark models
//	internal/dist       — synchronous data-parallel training engine (K worker
//	                      replicas, deterministic chunked ring all-reduce;
//	                      bit-identical across worker counts)
//	internal/pipeline   — pipeline-parallel training engine (S cost-balanced
//	                      model stages, GPipe/1F1B microbatch schedules,
//	                      hybrid DP×PP via per-stage ring groups;
//	                      bit-identical across stages/schedules/workers)
//	internal/transport  — pluggable communication substrate under the
//	                      engines (the Mesh contract): the in-process
//	                      channel fabric (the bit-identity oracle) and a
//	                      TCP backend with length-prefixed CRC frames,
//	                      deadlines, and retry/backoff; plus the
//	                      rendezvous coordinator/session (membership,
//	                      heartbeat failure detection). Failure is always
//	                      a typed *PeerError, never a hang
//	internal/grid       — multi-process DP×PP training: one OS process per
//	                      grid cell (rank k·S+s = replica k, stage s),
//	                      launcher/worker harness (cmd/mlperf-worker),
//	                      FNV-1a parameter-trajectory digests, the
//	                      in-process Reference run the TCP grid must
//	                      reproduce bit-for-bit, and the elastic
//	                      supervisor (Supervise): a failed generation is
//	                      respawned from the newest complete checkpoint
//	                      set and still finishes digest-identical to a
//	                      never-killed run
//	internal/ckpt       — sealed training checkpoints: the full TrainState
//	                      (params, optimizer slots, loss scale, RNG
//	                      streams, loader cursor, step/epoch) in one
//	                      FNV-1a digest-verified file, written atomically
//	                      (temp+rename) with bounded retention; Latest/
//	                      LatestComplete pick the newest valid set, so a
//	                      torn or corrupt file can never be resumed from
//	internal/chaos      — seeded fault injection: a FaultPlan is a pure
//	                      function of (seed, config) — worker crashes per
//	                      restart generation, wire-level faults (frame
//	                      corruption the CRC must catch, drops, delays)
//	                      via transport's WrapConn hook, and slow-inference
//	                      wrapping for serve backends
//	internal/serve      — LoadGen-style serving harness over trained
//	                      models: four traffic scenarios (single-stream,
//	                      multi-stream, offline, Poisson server), a dynamic
//	                      batcher over an admission-controlled bounded
//	                      queue (overload is a typed *OverloadError, never
//	                      a hang), R-7 tail-latency quantiles via
//	                      core.Quantile, SLO verdicts, and binary-searched
//	                      max sustainable QPS; arrival schedules and
//	                      predictions are bit-reproducible at a fixed seed
//	                      across runs and worker counts. Driven by
//	                      cmd/mlperf-serve; fed by models.Snapshot, the
//	                      deterministic digest-verified parameter handoff
//	                      from core.Run's CaptureParams
//	internal/leakcheck  — goroutine-leak assertions for teardown tests
//	internal/goboard    — Go engine; internal/mcts — self-play search
//	internal/mlog       — MLLOG structured logging
//	internal/clock      — injectable clocks (Real wall clock, Tick, Sim);
//	                      the only package allowed to call time.Now, so
//	                      every timing path is deterministic under test
//	internal/cluster    — simulated scale-out (Figures 4–5)
//	internal/submission — §4 divisions, categories, review, reporting
//	internal/analysis   — the mlperf-vet analyzer suite (detlint,
//	                      arenalint, hotpath, mloglint, nestpar):
//	                      mechanical enforcement of the determinism,
//	                      arena-ownership, hot-path-allocation, MLLOG-key,
//	                      and pool-re-entry invariants; driven by
//	                      cmd/mlperf-vet (make lint, gated in CI)
//
// The benchmarks in bench_test.go regenerate every table and figure; see
// DESIGN.md and EXPERIMENTS.md.
package repro
