package repro

// One benchmark per table and figure in the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out and
// microbenchmarks of the compute substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches print the same rows/series the paper reports; shapes
// (who wins, by what factor, where crossovers fall) are the reproduction
// target, not absolute times.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/autograd"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/goboard"
	"repro/internal/mcts"
	"repro/internal/models"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/precision"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// --- Table 1: the benchmark suite ---

func BenchmarkTable1Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := core.Suite(core.V05)
		if len(suite) != 7 {
			b.Fatal("Table 1 must list 7 benchmarks")
		}
	}
	b.StopTimer()
	fmt.Println("\nTable 1: MLPerf Training v0.5 benchmarks")
	for _, bench := range core.Suite(core.V05) {
		fmt.Printf("  %-46s %-28s target %.4g (%s)\n", bench.Task, bench.Model, bench.Target, bench.QualityMetric)
	}
}

// --- Figure 1: weight representations vs validation error ---

func BenchmarkFigure1Precision(b *testing.B) {
	ds := datasets.GenerateImages(datasets.DefaultImageConfig())
	formats := []precision.Format{precision.FP64, precision.FP16, precision.Fixed8, precision.Ternary}
	const epochs = 6
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fmt.Printf("\nFigure 1: validation error by epoch under weight representations (seed 11)\n")
		b.StartTimer()
		curves := map[precision.Format][]float64{}
		for _, f := range formats {
			hp := models.DefaultImageHParams()
			hp.Precision = precision.WeightsOnly(f)
			w := models.NewImageClassification(ds, hp, 11)
			for e := 0; e < epochs; e++ {
				w.TrainEpoch()
				curves[f] = append(curves[f], w.ValError())
			}
		}
		b.StopTimer()
		for _, f := range formats {
			fmt.Printf("  %-8s", f)
			for _, v := range curves[f] {
				fmt.Printf(" %.3f", v)
			}
			fmt.Println()
		}
		b.ReportMetric(curves[precision.Ternary][epochs-1]-curves[precision.FP64][epochs-1], "ternary-gap")
		b.StartTimer()
	}
}

// --- Figure 2a: NCF epochs-to-target variance across seeds ---

func BenchmarkFigure2NCFVariance(b *testing.B) {
	bench, err := core.FindBenchmark(core.V05, "recommendation")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var epochs []int
		for seed := uint64(1); seed <= 8; seed++ {
			r := core.Run(bench, core.RunConfig{Seed: seed})
			if r.Converged {
				epochs = append(epochs, r.Epochs)
			}
		}
		b.StopTimer()
		fmt.Printf("\nFigure 2a: NCF epochs to HR@10 >= %.3f across seeds: %v\n", bench.Target, epochs)
		lo, hi, sum := epochs[0], epochs[0], 0
		for _, e := range epochs {
			if e < lo {
				lo = e
			}
			if e > hi {
				hi = e
			}
			sum += e
		}
		b.ReportMetric(float64(sum)/float64(len(epochs)), "epochs-mean")
		b.ReportMetric(float64(hi-lo), "epochs-range")
		b.StartTimer()
	}
}

// --- Figure 2b: MiniGo epochs-to-target variance (high, as in the paper) ---

func BenchmarkFigure2MiniGoVariance(b *testing.B) {
	bench, err := core.FindBenchmark(core.V05, "reinforcement_learning")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var epochs []int
		for seed := uint64(1); seed <= 2; seed++ {
			r := core.Run(bench, core.RunConfig{Seed: seed, MaxEpochs: 45, EvalEvery: 2})
			e := r.Epochs
			if !r.Converged {
				e = 45 // censored at the cap — MiniGo variance is extreme (§2.2.3)
			}
			epochs = append(epochs, e)
		}
		b.StopTimer()
		fmt.Printf("\nFigure 2b: MiniGo epochs to %.2f oracle-move match across seeds: %v\n", bench.Target, epochs)
		b.StartTimer()
	}
}

// --- Figure 3: ResNet accuracy curves across 5 seeds ---

func BenchmarkFigure3ResNetCurves(b *testing.B) {
	bench, err := core.FindBenchmark(core.V05, "image_classification")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		// Train past the target (no early stop) so every seed's curve has
		// the same length, as in the figure.
		curves := make([][]float64, 0, 5)
		for seed := uint64(1); seed <= 5; seed++ {
			ds := datasets.GenerateImages(datasets.DefaultImageConfig())
			w := models.NewImageClassification(ds, models.DefaultImageHParams(), seed)
			var curve []float64
			for e := 0; e < 14; e++ {
				w.TrainEpoch()
				curve = append(curve, w.Evaluate())
			}
			curves = append(curves, curve)
		}
		b.StopTimer()
		fmt.Printf("\nFigure 3: ResNet top-1 by epoch, 5 seeds (target %.3f dotted)\n", bench.Target)
		for s, c := range curves {
			fmt.Printf("  seed %d:", s+1)
			for _, q := range c {
				fmt.Printf(" %.3f", q)
			}
			fmt.Println()
		}
		// Early-phase noise exceeds late-phase noise (the figure's point:
		// "the early phase of training is marked by significantly more
		// variability"; the reference LR decay stabilizes late epochs).
		early := curveNoise(curves, 1, 9)
		late := curveNoise(curves, len(curves[0])-4, len(curves[0]))
		b.ReportMetric(early, "early-noise")
		b.ReportMetric(late, "late-noise")
		b.StartTimer()
	}
}

// curveNoise returns the mean epoch-to-epoch quality change |q_e − q_{e−1}|
// across seeds over epochs [lo, hi) — the per-curve variability Figure 3
// contrasts between the early and late training phases.
func curveNoise(curves [][]float64, lo, hi int) float64 {
	if lo < 1 {
		lo = 1
	}
	total, n := 0.0, 0
	for _, c := range curves {
		for e := lo; e < hi && e < len(c); e++ {
			d := c[e] - c[e-1]
			if d < 0 {
				d = -d
			}
			total += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// --- Figure 4: 16-chip speedups v0.5 -> v0.6 ---

func BenchmarkFigure4Speedup16Chip(b *testing.B) {
	var rows []cluster.Figure4Row
	for i := 0; i < b.N; i++ {
		rows = cluster.Figure4()
	}
	b.StopTimer()
	fmt.Println("\nFigure 4: fastest 16-chip entry speedup v0.5 -> v0.6 (targets raised)")
	for _, r := range rows {
		fmt.Printf("  %-32s %.2fx\n", r.Benchmark, r.Speedup)
	}
	b.ReportMetric(cluster.GeoMeanSpeedup(rows), "geomean-speedup")
}

// --- Figure 5: best-overall scale increase v0.5 -> v0.6 ---

func BenchmarkFigure5ScaleIncrease(b *testing.B) {
	var rows []cluster.Figure5Row
	for i := 0; i < b.N; i++ {
		rows = cluster.Figure5()
	}
	b.StopTimer()
	fmt.Println("\nFigure 5: chips in the fastest-overall system v0.5 -> v0.6")
	for _, r := range rows {
		fmt.Printf("  %-32s %d -> %d (%.1fx)\n", r.Benchmark, r.V05Chips, r.V06Chips, r.Increase)
	}
	b.ReportMetric(cluster.GeoMeanIncrease(rows), "geomean-increase")
}

// --- §2.2.2 in-text: batch size vs epochs-to-target ---

func BenchmarkBatchSizeEpochsToTarget(b *testing.B) {
	var resnet cluster.WorkloadModel
	for _, w := range cluster.WorkloadModels() {
		if w.ID == "image_classification" {
			resnet = w
		}
	}
	for i := 0; i < b.N; i++ {
		_ = resnet.EpochsToTarget(4096)
	}
	b.StopTimer()
	fmt.Println("\n§2.2.2: ResNet epochs-to-target vs global batch (paper: 64 @ 4K, >80 @ 16K)")
	for _, batch := range []int{256, 1024, 4096, 16384, 65536} {
		fmt.Printf("  batch %6d: %.1f epochs\n", batch, resnet.EpochsToTarget(batch))
	}
	b.ReportMetric(resnet.EpochsToTarget(16384)/resnet.EpochsToTarget(4096), "16k-vs-4k")
}

// --- §2.2.4: momentum formulation divergence under LR decay ---

func BenchmarkMomentumVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := autograd.NewParam("a", tensor.Ones(1))
		c := autograd.NewParam("c", tensor.Ones(1))
		sa := opt.NewSGD([]*autograd.Param{a}, 0.1, 0.9, 0, opt.CaffeStyle)
		sc := opt.NewSGD([]*autograd.Param{c}, 0.1, 0.9, 0, opt.TorchStyle)
		for step := 0; step < 100; step++ {
			if step == 50 {
				sa.SetLR(0.01)
				sc.SetLR(0.01)
			}
			a.Grad.Data[0] = 2 * a.Value.Data[0]
			c.Grad.Data[0] = 2 * c.Value.Data[0]
			sa.Step()
			sc.Step()
		}
		if i == 0 {
			b.StopTimer()
			fmt.Printf("\n§2.2.4: Caffe-style vs Torch-style momentum after LR decay: w=%.6f vs w=%.6f (divergence %.2e)\n",
				a.Value.Data[0], c.Value.Data[0], a.Value.Data[0]-c.Value.Data[0])
			b.StartTimer()
		}
	}
}

// --- §3.2.2: timing-sample stability ---

func BenchmarkTimingSampleStability(b *testing.B) {
	bench, err := core.FindBenchmark(core.V05, "recommendation")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var times []time.Duration
		for seed := uint64(1); seed <= 10; seed++ {
			r := core.Run(bench, core.RunConfig{Seed: seed})
			if r.Converged {
				times = append(times, r.TimeToTrain)
			}
		}
		st := core.Spread(times, 0.10)
		b.StopTimer()
		fmt.Printf("\n§3.2.2: NCF 10-run stability: olympic mean %v, %.0f%% of retained runs within 10%%\n",
			st.Mean.Round(time.Millisecond), st.FracWithin*100)
		b.ReportMetric(st.FracWithin, "frac-within-10pct")
		b.StartTimer()
	}
}

// --- Ablations: design choices called out in DESIGN.md ---

// LARS vs plain SGD+momentum for the large-batch image workload (the v0.6
// rule-change rationale).
func BenchmarkAblationLARSLargeBatch(b *testing.B) {
	ds := datasets.GenerateImages(datasets.DefaultImageConfig())
	for i := 0; i < b.N; i++ {
		hpSGD := models.DefaultImageHParams()
		hpSGD.Batch = 160
		sgd := models.NewImageClassification(ds, hpSGD, 21)
		hpLARS := hpSGD
		hpLARS.UseLARS = true
		hpLARS.WarmupEpochs = 2
		lars := models.NewImageClassification(ds, hpLARS, 21)
		for e := 0; e < 6; e++ {
			sgd.TrainEpoch()
			lars.TrainEpoch()
		}
		b.StopTimer()
		fmt.Printf("\nAblation: large-batch (160) top-1 after 6 epochs: SGD %.3f vs LARS %.3f\n",
			sgd.Evaluate(), lars.Evaluate())
		b.StartTimer()
	}
}

// Dihedral augmentation for MiniGo replay (design choice in the RL loop).
func BenchmarkAblationMiniGoSims(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hpLow := models.DefaultMiniGoHParams()
		hpLow.Sims = 8
		low := models.NewReinforcementLearning(hpLow, 5)
		hpHigh := models.DefaultMiniGoHParams()
		hpHigh.Sims = 48
		high := models.NewReinforcementLearning(hpHigh, 5)
		for e := 0; e < 6; e++ {
			low.TrainEpoch()
			high.TrainEpoch()
		}
		b.StopTimer()
		fmt.Printf("\nAblation: MiniGo oracle-move match after 6 epochs: 8 sims %.3f vs 48 sims %.3f\n",
			low.Evaluate(), high.Evaluate())
		b.StartTimer()
	}
}

// --- Substrate microbenchmarks ---

// --- Serial vs parallel kernels (the internal/parallel subsystem) ---
//
// Pairs of benchmarks pinning the worker pool to 1 (serial fallback) vs
// GOMAXPROCS, at the shapes the benchmark models exercise, so the
// substrate speedup is visible in BENCH trajectories. Outputs are
// bit-identical between the two (see internal/tensor/parallel_test.go);
// only the wall time may differ.

// withPoolWorkers pins the kernel pool for one benchmark run.
func withPoolWorkers(b *testing.B, n int) {
	b.Helper()
	old := parallel.Workers()
	parallel.SetWorkers(n)
	b.Cleanup(func() { parallel.SetWorkers(old) })
}

func benchMatMulAt(b *testing.B, workers int) {
	withPoolWorkers(b, workers)
	rng := tensor.NewRNG(1)
	// Model-scale GEMM: a batch of 256 activations against a 256x256
	// weight block (the dense layers of the scaled NCF/Transformer at
	// production width).
	x := tensor.Randn(rng, 1, 256, 256)
	y := tensor.Randn(rng, 1, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkMatMulModelSerial(b *testing.B)   { benchMatMulAt(b, 1) }
func BenchmarkMatMulModelParallel(b *testing.B) { benchMatMulAt(b, 0) }

func benchMatMulTransAAt(b *testing.B, workers int) {
	withPoolWorkers(b, workers)
	rng := tensor.NewRNG(1)
	x := tensor.Randn(rng, 1, 256, 256)
	y := tensor.Randn(rng, 1, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulTransA(x, y)
	}
}

func BenchmarkMatMulTransASerial(b *testing.B)   { benchMatMulTransAAt(b, 1) }
func BenchmarkMatMulTransAParallel(b *testing.B) { benchMatMulTransAAt(b, 0) }

func benchConvAt(b *testing.B, workers int) {
	withPoolWorkers(b, workers)
	rng := tensor.NewRNG(2)
	// The ResNet stem shape: a training batch of 16x16 images through a
	// 3x3 filter bank.
	x := tensor.Randn(rng, 1, 8, 8, 16, 16)
	w := tensor.Randn(rng, 1, 16, 8, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2D(x, w, nil, 1, 1)
	}
}

func BenchmarkConv2DSerial(b *testing.B)   { benchConvAt(b, 1) }
func BenchmarkConv2DParallel(b *testing.B) { benchConvAt(b, 0) }

func benchConvBackwardAt(b *testing.B, workers int) {
	withPoolWorkers(b, workers)
	rng := tensor.NewRNG(3)
	x := tensor.Randn(rng, 1, 8, 8, 16, 16)
	w := tensor.Randn(rng, 1, 16, 8, 3, 3)
	dout := tensor.Randn(rng, 1, 8, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2DBackward(x, w, dout, 1, 1, true)
	}
}

func BenchmarkConv2DBackwardSerial(b *testing.B)   { benchConvBackwardAt(b, 1) }
func BenchmarkConv2DBackwardParallel(b *testing.B) { benchConvBackwardAt(b, 0) }

func BenchmarkConv2DIm2col(b *testing.B) {
	rng := tensor.NewRNG(4)
	x := tensor.Randn(rng, 1, 8, 8, 16, 16)
	w := tensor.Randn(rng, 1, 16, 8, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2DIm2col(x, w, nil, 1, 1)
	}
}

func benchRunSetAt(b *testing.B, workers int) {
	bench, err := core.FindBenchmark(core.V05, "recommendation")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunSet(bench, core.RunSetConfig{BaseSeed: 1, Runs: 4, Workers: workers, MaxEpochs: 2})
	}
}

func BenchmarkRunSetSerial(b *testing.B)     { benchRunSetAt(b, 1) }
func BenchmarkRunSetConcurrent(b *testing.B) { benchRunSetAt(b, 0) }

// --- Serial vs data-parallel training steps (the internal/dist engine) ---
//
// One global step at a fixed global batch and microshard count, varying
// only the worker count. Every configuration trains bit-identically
// (internal/dist/dist_test.go asserts it); only wall time may differ, and
// speedup requires spare cores. Kernels are pinned serial so the
// data-parallel workers are the only parallelism.

// benchDPNCFStepAt measures one NCF engine step at the given worker count.
func benchDPNCFStepAt(b *testing.B, workers int) {
	withPoolWorkers(b, 1)
	ds := datasets.GenerateRec(datasets.DefaultRecConfig())
	hp := models.DefaultNCFHParams()
	eng, err := dist.New(dist.Config{
		Endpoint:    transport.Endpoint{Workers: workers},
		Microshards: 8,
		GlobalBatch: 256, DatasetN: len(ds.Train), Seed: 1,
	}, func(worker int) dist.Replica {
		m := models.NewRecommendation(ds, hp, 1)
		return dist.Replica{Model: m, Opt: m.Opt}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.StepNext()
	}
}

func BenchmarkDPNCFStepSerial(b *testing.B) { benchDPNCFStepAt(b, 1) }
func BenchmarkDPNCFStepDP2(b *testing.B)    { benchDPNCFStepAt(b, 2) }
func BenchmarkDPNCFStepDP4(b *testing.B)    { benchDPNCFStepAt(b, 4) }
func BenchmarkDPNCFStepDP8(b *testing.B)    { benchDPNCFStepAt(b, 8) }

// benchDPImageStepAt measures one ResNet engine step (conv/BN model shape)
// at the given worker count.
func benchDPImageStepAt(b *testing.B, workers int) {
	withPoolWorkers(b, 1)
	ds := datasets.GenerateImages(datasets.DefaultImageConfig())
	hp := models.DefaultImageHParams()
	eng, err := dist.New(dist.Config{
		Endpoint:    transport.Endpoint{Workers: workers},
		Microshards: 8,
		GlobalBatch: hp.Batch, DatasetN: ds.Cfg.TrainN, Seed: 1,
	}, func(worker int) dist.Replica {
		m := models.NewImageClassification(ds, hp, 1)
		return dist.Replica{Model: m, Opt: m.Opt}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.StepNext()
	}
}

func BenchmarkDPImageStepSerial(b *testing.B) { benchDPImageStepAt(b, 1) }
func BenchmarkDPImageStepDP2(b *testing.B)    { benchDPImageStepAt(b, 2) }
func BenchmarkDPImageStepDP4(b *testing.B)    { benchDPImageStepAt(b, 4) }
func BenchmarkDPImageStepDP8(b *testing.B)    { benchDPImageStepAt(b, 8) }

func BenchmarkMatMul64(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.Randn(rng, 1, 64, 64)
	y := tensor.Randn(rng, 1, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	rng := tensor.NewRNG(2)
	x := tensor.Randn(rng, 1, 8, 8, 16, 16)
	w := tensor.Randn(rng, 1, 16, 8, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2D(x, w, nil, 1, 1)
	}
}

func BenchmarkAutogradStep(b *testing.B) {
	rng := tensor.NewRNG(3)
	w := autograd.NewParam("w", tensor.Randn(rng, 0.1, 32, 32))
	x := tensor.Randn(rng, 1, 16, 32)
	labels := make([]int, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ZeroGrad()
		tape := autograd.NewTape()
		logits := autograd.MatMul(autograd.Const(x), tape.Watch(w))
		tape.Backward(autograd.SoftmaxCrossEntropy(logits, labels))
	}
}

func BenchmarkMCTSSearch(b *testing.B) {
	board := goboard.New(5)
	s := mcts.New(mcts.Config{Sims: 32, CPuct: 1.4, Komi: 6.5}, mcts.TacticalEvaluator{Komi: 6.5}, tensor.NewRNG(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(board, false)
	}
}

func BenchmarkGoBoardLegalMoves(b *testing.B) {
	board := goboard.New(9)
	rng := tensor.NewRNG(5)
	for i := 0; i < 20; i++ {
		legal := board.LegalMoves()
		if err := board.Play(legal[rng.Intn(len(legal))]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		board.LegalMoves()
	}
}

func BenchmarkNCFTrainEpoch(b *testing.B) {
	ds := datasets.GenerateRec(datasets.DefaultRecConfig())
	w := models.NewRecommendation(ds, models.DefaultNCFHParams(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.TrainEpoch()
	}
}
