GO ?= go

.PHONY: all check fmt vet build test test-short bench bench-kernels

all: check

# The CI gate: formatting, static checks, a full build, and the fast tests.
check: fmt vet build test-short

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Full suite, including the ~45s model-convergence tests.
test:
	$(GO) test ./...

# Fast suite (< 10s): convergence tests run at reduced epoch budgets.
test-short:
	$(GO) test -short ./...

# Every table/figure benchmark plus the kernel microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Just the serial-vs-parallel substrate comparisons.
bench-kernels:
	$(GO) test -bench='MatMul|Conv2D|RunSet' -benchmem -run='^$$' .
