GO ?= go

BENCH_SMOKE_OUT ?= bench-smoke.out

.PHONY: all ci check fmt vet staticcheck lint build test test-short race bench bench-smoke bench-kernels bench-gemm pp-smoke smoke-f32 multiproc-smoke serve-smoke chaos-smoke

all: check

# Everything CI runs, in the same order — reproduce any CI failure locally
# with exactly `make ci` (the workflow jobs call these same targets).
ci: check race multiproc-smoke chaos-smoke bench-smoke smoke-f32 serve-smoke

# The fast gate: formatting, static checks (incl. the repo's own analyzer
# suite), a full build, and the fast tests.
check: fmt vet staticcheck lint build test-short

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck runs when installed (CI installs the same pinned version:
# go install honnef.co/go/tools/cmd/staticcheck@2025.1.1).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; \
	fi

# The repo's own analyzer suite (internal/analysis, driven by
# cmd/mlperf-vet): determinism (no wall clock/global rand/FMA/unordered
# map ranges), arena acquire/release ownership, //mlperfvet:hotpath
# allocation-freedom, MLLOG compliance keys, and fork-join pool re-entry.
lint:
	$(GO) run ./cmd/mlperf-vet ./...

build:
	$(GO) build ./...

# Full suite, including the ~45s model-convergence tests.
test:
	$(GO) test ./...

# Fast suite (< 10s): convergence tests run at reduced epoch budgets.
test-short:
	$(GO) test -short ./...

# Race-detector pass over the fast suite: the dist ring, the parallel pool,
# the run-set executor, and the arena are all concurrency-heavy.
race:
	$(GO) test -race -short ./...

# Multi-process training smoke under the race detector: the grid tests
# re-exec the test binary as real OS worker processes over loopback TCP and
# require bit-identity with the in-process fabric and the serial baseline,
# plus typed (not hung) detection of killed and hung workers. `make race`
# skips these (-short); this target runs exactly them, with a hard timeout
# so a transport hang fails fast instead of stalling CI.
multiproc-smoke:
	$(GO) test -race -run 'MultiProc' -timeout 300s -v ./internal/grid/

# Fault-tolerance smoke under the race detector: a multi-process loopback
# grid loses a worker to a seeded chaos-injected crash (internal/chaos),
# the supervisor respawns it from the newest complete checkpoint set
# (internal/ckpt), and the completed run must report trajectory digests
# bit-identical to a never-killed reference — plus the checkpoint/resume
# and crash-boundary sweeps in ckpt, core, dist, and pipeline.
chaos-smoke:
	$(GO) test -race -run 'TestSupervisedChaos|TestMultiProcResume' -timeout 300s -v ./internal/grid/
	$(GO) test -race -timeout 300s ./internal/ckpt/ ./internal/chaos/
	$(GO) test -race -run 'Resume|Checkpoint|Crash' -timeout 300s ./internal/core/ ./internal/dist/ ./internal/pipeline/

# Every table/figure benchmark plus the kernel microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Compile-and-run-once smoke over every benchmark in the repo, then fail if
# any steady-state step benchmark (BenchmarkStepAllocs* for serial/DP,
# BenchmarkStepPipeline* for PP and hybrid DP×PP), GEMM kernel benchmark
# (BenchmarkGEMM*, incl. the naive references), or warm serving-step
# benchmark (BenchmarkServe*) reports a nonzero allocs/op — the
# allocation-free hot-path regression gate.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... > $(BENCH_SMOKE_OUT) || (cat $(BENCH_SMOKE_OUT); exit 1)
	@cat $(BENCH_SMOKE_OUT)
	@awk '/^Benchmark(Step(Allocs|Pipeline)|GEMM|Serve)/ { if ($$(NF-1) != "0" || $$NF != "allocs/op") { print "FAIL: hot path allocates: " $$0; bad = 1 } } \
		END { if (bad) exit 1; print "bench-smoke: all BenchmarkStepAllocs*/BenchmarkStepPipeline*/BenchmarkGEMM*/BenchmarkServe* report 0 allocs/op" }' $(BENCH_SMOKE_OUT)

# Pipeline-only slice of bench-smoke: run just the pipeline step benchmarks
# and apply the same nonzero-alloc gate (fast local check for PP changes).
pp-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkStepPipeline' -benchtime 1x -benchmem . > $(BENCH_SMOKE_OUT) || (cat $(BENCH_SMOKE_OUT); exit 1)
	@cat $(BENCH_SMOKE_OUT)
	@awk '/^BenchmarkStepPipeline/ { if ($$(NF-1) != "0" || $$NF != "allocs/op") { print "FAIL: pipeline step allocates: " $$0; bad = 1 } } \
		END { if (bad) exit 1; print "pp-smoke: all BenchmarkStepPipeline* report 0 allocs/op" }' $(BENCH_SMOKE_OUT)

# Reduced-numerics smoke: short training runs under each reduced regime
# through the CLI (f32 GEMM → low-precision autograd staging → mixed
# precision → harness plumbing, end to end), then the numerics-focused
# test slices across the stack. The fp64 regime needs no smoke of its own:
# every other target trains it.
smoke-f32:
	$(GO) run ./cmd/mlperf -benchmark recommendation -dtype f32 -runs 1 -max-epochs 2
	$(GO) run ./cmd/mlperf -benchmark recommendation -dtype bf16 -runs 1 -max-epochs 2
	$(GO) test -run 'F32|BF16|Numerics|StatCheck|Quantize|MP|LP' ./internal/tensor ./internal/autograd ./internal/precision ./internal/core ./internal/dist

# Serving smoke: train a tiny NCF in-process, snapshot its parameters, and
# serve it under every traffic scenario (single-stream, multi-stream,
# offline, and Poisson server) through cmd/mlperf-serve, bounded by a hard
# timeout so an overload-path hang fails fast. The grep asserts an SLO
# verdict was actually emitted for the gated run — the train→snapshot→serve
# pipeline end to end.
serve-smoke:
	timeout 300 $(GO) run ./cmd/mlperf-serve -train -epochs 2 -scenario all \
		-queries 400 -qps 300 -slo 250ms -strict > serve-smoke.out || (cat serve-smoke.out; exit 1)
	@cat serve-smoke.out
	@grep -q 'SLO valid' serve-smoke.out || (echo "FAIL: no SLO verdict in serve-smoke output"; exit 1)
	@rm -f serve-smoke.out
	@echo "serve-smoke: all four scenarios served with a valid SLO verdict"

# Just the serial-vs-parallel substrate comparisons.
bench-kernels:
	$(GO) test -bench='MatMul|Conv2D|RunSet' -benchmem -run='^$$' .

# The GEMM engine benchmarks (packed vs naive reference, GFLOP/s via
# ReportMetric). BENCH_gemm.json holds the checked-in snapshot of these
# numbers so future PRs have a kernel-throughput baseline to diff against.
bench-gemm:
	$(GO) test -bench='^BenchmarkGEMM' -benchmem -run='^$$' .
