package repro

// GEMM engine benchmarks: the packed, blocked, register-tiled kernels
// behind MatMul/MatMulTransA/MatMulTransB versus the retained naive
// reference, at the three shape regimes the workloads exercise —
// square (ResNet im2col, NCF at production width), tall-skinny (large
// batch through a narrow hidden layer), and short-wide (the
// Transformer's short-tall attention/projection shapes). Each reports
// GFLOP/s via b.ReportMetric, so `make bench-gemm` snapshots kernel
// throughput (BENCH_gemm.json) and trajectories stay comparable across
// PRs.
//
// The kernel pool is pinned to 1 worker: these measure single-core
// kernel quality (cache blocking + packing + register tiling), not
// parallel scaling — and keep the timed region allocation-free, which
// the bench-smoke awk gate asserts for every BenchmarkGEMM*.

import (
	"runtime"
	"testing"

	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// benchGEMMShape times c = a·b through the public MatMulInto entry point
// (the packed engine) and reports achieved GFLOP/s.
func benchGEMMShape(b *testing.B, n, k, m int) {
	b.Helper()
	withPoolWorkers(b, 1)
	rng := tensor.NewRNG(1)
	x := tensor.Randn(rng, 1, n, k)
	y := tensor.Randn(rng, 1, k, m)
	c := tensor.New(n, m)
	tensor.MatMulInto(c, x, y) // warm the pack-buffer pool
	// Collect the setup debris (operand tensors) now so a GC cycle's own
	// bookkeeping cannot land inside the timed region; the warm loop
	// allocates nothing, so no further GC can trigger. See bench_step_test.go.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(c, x, y)
	}
	b.StopTimer()
	reportGFLOPS(b, n, k, m)
}

// benchGEMMNaiveShape times the same product through the retained naive
// row kernel (the bit-identity reference), for the before/after ratio.
func benchGEMMNaiveShape(b *testing.B, n, k, m int) {
	b.Helper()
	rng := tensor.NewRNG(1)
	x := tensor.Randn(rng, 1, n, k)
	y := tensor.Randn(rng, 1, k, m)
	c := tensor.New(n, m)
	runtime.GC() // see benchGEMMShape
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulRows(c, x, y, 0, n)
	}
	b.StopTimer()
	reportGFLOPS(b, n, k, m)
}

func reportGFLOPS(b *testing.B, n, k, m int) {
	flops := 2 * float64(n) * float64(k) * float64(m) * float64(b.N)
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(flops/s/1e9, "GFLOP/s")
	}
}

// benchGEMMF32Shape times the float32 engine (the reduced-precision
// regime's compute path) through MatMulF32Into. Same blocking and
// determinism contract as the f64 engine, but the 8×8 micro-kernel moves
// twice the elements per vector — the two-regime numerics PR's headline
// throughput win.
func benchGEMMF32Shape(b *testing.B, n, k, m int) {
	b.Helper()
	withPoolWorkers(b, 1)
	rng := tensor.NewRNG(1)
	x, y := tensor.NewF32(n, k), tensor.NewF32(k, m)
	x.FromF64(tensor.Randn(rng, 1, n, k), tensor.Float32)
	y.FromF64(tensor.Randn(rng, 1, k, m), tensor.Float32)
	c := tensor.NewF32(n, m)
	tensor.MatMulF32Into(c, x, y) // warm the pack-buffer pool
	runtime.GC()                  // see benchGEMMShape
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulF32Into(c, x, y)
	}
	b.StopTimer()
	reportGFLOPS(b, n, k, m)
}

func BenchmarkGEMMSquare512(b *testing.B)       { benchGEMMShape(b, 512, 512, 512) }
func BenchmarkGEMMTallSkinny(b *testing.B)      { benchGEMMShape(b, 4096, 64, 64) }
func BenchmarkGEMMShortWide(b *testing.B)       { benchGEMMShape(b, 32, 64, 2048) }
func BenchmarkGEMMF32Square512(b *testing.B)    { benchGEMMF32Shape(b, 512, 512, 512) }
func BenchmarkGEMMF32TallSkinny(b *testing.B)   { benchGEMMF32Shape(b, 4096, 64, 64) }
func BenchmarkGEMMF32ShortWide(b *testing.B)    { benchGEMMF32Shape(b, 32, 64, 2048) }
func BenchmarkGEMMNaiveSquare512(b *testing.B)  { benchGEMMNaiveShape(b, 512, 512, 512) }
func BenchmarkGEMMNaiveTallSkinny(b *testing.B) { benchGEMMNaiveShape(b, 4096, 64, 64) }
func BenchmarkGEMMNaiveShortWide(b *testing.B)  { benchGEMMNaiveShape(b, 32, 64, 2048) }

// --- Transformer steady-state steps (serial / DP4 / PP4) ---
//
// The Transformer is the workload whose short-tall GEMM shapes the 2-D
// tile scheduler targets; these benchmarks give the README performance
// table its translation rows. (Not part of the 0-alloc awk gate, which
// covers BenchmarkStepAllocs*/BenchmarkStepPipeline*/BenchmarkGEMM*.)

func benchStepTransformerDP(b *testing.B, workers int) {
	withPoolWorkers(b, 1)
	ds := datasets.GenerateMT(datasets.DefaultMTConfig())
	hp := models.DefaultTransformerHParams()
	eng, err := dist.New(dist.Config{
		Endpoint:    transport.Endpoint{Workers: workers},
		Microshards: 8,
		GlobalBatch: hp.Batch, DatasetN: len(ds.Train), Seed: 1, DropLast: true,
	}, func(worker int) dist.Replica {
		m := models.NewTranslation(ds, hp, 1)
		return dist.Replica{Model: m, Opt: m.Opt}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	for i := 0; i < stepAllocsWarmup; i++ {
		eng.StepNext()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.StepNext()
	}
}

func BenchmarkStepTransformerSerial(b *testing.B) { benchStepTransformerDP(b, 1) }
func BenchmarkStepTransformerDP4(b *testing.B)    { benchStepTransformerDP(b, 4) }

func BenchmarkStepTransformerPP4(b *testing.B) {
	withPoolWorkers(b, 1)
	ds := datasets.GenerateMT(datasets.DefaultMTConfig())
	hp := models.DefaultTransformerHParams()
	var reps []*models.Translation
	eng, err := pipeline.New(pipeline.Config{
		Endpoint: transport.Endpoint{Workers: 1},
		Stages:   4, Microbatches: 4, Schedule: pipeline.GPipe,
		GlobalBatch: hp.Batch, DatasetN: len(ds.Train), Seed: 1, DropLast: true,
	}, func(worker int) []pipeline.StageReplica {
		m := models.NewTranslation(ds, hp, 1)
		reps = append(reps, m)
		parts, err := m.PipelineStages(4)
		if err != nil {
			b.Fatal(err)
		}
		return pipeline.Wrap(parts)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	eng.SetLRSchedule(reps[0].Sched)
	for i := 0; i < stepAllocsWarmup; i++ {
		eng.StepNext()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.StepNext()
	}
}
